package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4): every counter, gauge, histogram, and progress
// instrument becomes a metric family with a HELP/TYPE pair, and span
// durations are aggregated by name into a labeled family. Instrument
// names are free-form ("cover.greedy_rounds", "stream.block[0,512)"),
// so the writer sanitizes family names to the legal charset and escapes
// label values; a fuzz target pins that no input name can produce an
// invalid exposition line.

// PromContentType is the Content-Type of the text exposition format,
// what the /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot as Prometheus text exposition.
// namespace prefixes every family name ("kanon" unless empty). Families
// are emitted in sorted order, so output is deterministic for a given
// snapshot. A nil snapshot writes nothing and reports no error. This is
// the single-node view: it delegates to WritePrometheusNodes with one
// unlabeled entry.
func (s *Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	if s == nil {
		return nil
	}
	return WritePrometheusNodes(w, namespace, []NodeSnapshot{{Snap: s}})
}

// promLabel is one label pair of a series line.
type promLabel struct{ name, value string }

// promEmitter accumulates exposition lines, deduplicating family names
// that collide after sanitization (distinct raw names can sanitize to
// the same family, and one raw name may back several instrument kinds).
type promEmitter struct {
	w    io.Writer
	ns   string
	seen map[string]bool // family names already emitted or reserved
	err  error
}

// family maps a raw instrument name to a unique sanitized family name
// (namespace prefix, charset sanitization, collision suffix).
func (e *promEmitter) family(raw, suffix string) string {
	return e.familyMulti(raw + suffix)
}

// familyMulti returns a unique family name for raw; extra suffixed
// forms (a histogram's _bucket, _sum, _count series) are reserved
// together so none of them can collide with another family.
func (e *promEmitter) familyMulti(raw string, sufs ...string) string {
	base := e.ns + "_" + promSanitize(raw)
	all := append([]string{""}, sufs...)
	cand := base
	for n := 2; ; n++ {
		ok := true
		for _, suf := range all {
			if e.seen[cand+suf] {
				ok = false
				break
			}
		}
		if ok {
			for _, suf := range all {
				e.seen[cand+suf] = true
			}
			return cand
		}
		cand = fmt.Sprintf("%s_dup%d", base, n)
	}
}

// head writes the HELP/TYPE pair for a family.
func (e *promEmitter) head(fam, help, typ string) {
	e.printf("# HELP %s %s\n", fam, promEscapeHelp(help))
	e.printf("# TYPE %s %s\n", fam, typ)
}

// series writes one sample line.
func (e *promEmitter) series(fam string, labels []promLabel, value string) {
	if len(labels) == 0 {
		e.printf("%s %s\n", fam, value)
		return
	}
	var b strings.Builder
	b.WriteString(fam)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promSanitizeLabelName(l.name))
		b.WriteString(`="`)
		b.WriteString(promEscapeLabelValue(l.value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	e.printf("%s %s\n", b.String(), value)
}

func (e *promEmitter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// promSanitize maps an arbitrary instrument name into the metric-name
// charset [a-zA-Z0-9_]: every illegal byte becomes '_'. Callers always
// prepend the namespace, so a leading digit is never first.
func promSanitize(s string) string {
	if s == "" {
		return "x"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSanitizeLabelName maps a label name into [a-zA-Z0-9_] with a
// non-digit first character.
func promSanitizeLabelName(s string) string {
	out := promSanitize(s)
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promEscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func promEscapeLabelValue(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promEscapeHelp escapes HELP text: backslash and newline.
func promEscapeHelp(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Exposition-lint machinery. LintPrometheus enforces the promtool-style
// rules the unit tests and the fuzz target pin: legal metric and label
// name charsets, escaped label values, every series preceded by its
// family's HELP/TYPE pair, histogram buckets cumulative and capped by
// +Inf. It exists so tests (and callers embedding the exporter) can
// verify arbitrary snapshots render to valid exposition text.

var (
	lintMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintSeriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (\+Inf|-Inf|NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// LintPrometheus validates Prometheus text exposition. It returns nil
// when every line is well-formed and typed, and a descriptive error on
// the first violation.
func LintPrometheus(text []byte) error {
	typed := map[string]string{} // family → TYPE
	helped := map[string]bool{}
	lines := strings.Split(string(text), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !lintMetricName.MatchString(name) {
				return fmt.Errorf("line %d: HELP for illegal metric name %q", ln+1, name)
			}
			if helped[name] {
				return fmt.Errorf("line %d: duplicate HELP for %q", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if !lintMetricName.MatchString(name) {
				return fmt.Errorf("line %d: TYPE for illegal metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q", ln+1, typ)
			}
			if !helped[name] {
				return fmt.Errorf("line %d: TYPE %q without preceding HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typed[name] = typ
		case strings.HasPrefix(line, "#"):
			// Free-form comment: allowed.
		default:
			m := lintSeriesLine.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed series line %q", ln+1, line)
			}
			fam := seriesFamily(m[1], typed)
			if fam == "" {
				return fmt.Errorf("line %d: series %q has no HELP/TYPE pair", ln+1, m[1])
			}
		}
	}
	if err := lintHistograms(lines, typed); err != nil {
		return err
	}
	return nil
}

// seriesFamily resolves a sample name to its typed family, accepting
// the histogram/summary suffixes.
func seriesFamily(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return ""
}

// lintLabelPair extracts the label pairs of a series line's label set.
var lintLabelPair = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\\n])*)"`)

// lintHistogramKey derives the per-series-group key for a histogram
// sample: family plus the canonicalized label set with `le` removed.
// Cluster expositions emit one bucket ladder per node label, and each
// ladder must be checked on its own — cumulativity across different
// label sets is not a format rule.
func lintHistogramKey(fam, name string) string {
	_, labels, ok := strings.Cut(name, "{")
	if !ok {
		return fam
	}
	var pairs []string
	for _, m := range lintLabelPair.FindAllStringSubmatch(labels, -1) {
		if m[1] == "le" {
			continue
		}
		pairs = append(pairs, m[1]+"="+m[2])
	}
	if len(pairs) == 0 {
		return fam // {le="..."} alone keys the same ladder as the bare name
	}
	sort.Strings(pairs)
	return fam + "{" + strings.Join(pairs, ",") + "}"
}

// lintHistograms checks every histogram bucket ladder — one per family
// and label set (minus `le`): bucket counts are cumulative
// (nondecreasing in le order as emitted), the +Inf bucket is present
// and equals the matching _count.
func lintHistograms(lines []string, typed map[string]string) error {
	type histState struct {
		last    int64
		inf     int64
		hasInf  bool
		count   int64
		hasCnt  bool
		ordered bool
	}
	hists := map[string]*histState{} // ladder key → state
	var ladders []string             // insertion order, for deterministic errors
	ladder := func(key string) *histState {
		h, ok := hists[key]
		if !ok {
			h = &histState{ordered: true}
			hists[key] = h
			ladders = append(ladders, key)
		}
		return h
	}
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		bare, _, _ := strings.Cut(name, "{")
		var val int64
		fmt.Sscanf(strings.TrimSpace(rest), "%d", &val)
		if base := strings.TrimSuffix(bare, "_bucket"); base != bare {
			if typed[base] != "histogram" {
				continue
			}
			h := ladder(lintHistogramKey(base, name))
			if strings.Contains(name, `le="+Inf"`) {
				h.hasInf = true
				h.inf = val
			} else {
				if val < h.last {
					h.ordered = false
				}
				h.last = val
			}
		} else if base := strings.TrimSuffix(bare, "_count"); base != bare {
			if typed[base] != "histogram" {
				continue
			}
			h := ladder(lintHistogramKey(base, name))
			h.hasCnt = true
			h.count = val
		}
	}
	for _, key := range ladders {
		h := hists[key]
		if !h.hasInf {
			return fmt.Errorf("histogram %q missing +Inf bucket", key)
		}
		if !h.ordered {
			return fmt.Errorf("histogram %q buckets not cumulative", key)
		}
		if h.last > h.inf {
			return fmt.Errorf("histogram %q bucket count exceeds +Inf bucket", key)
		}
		if h.hasCnt && h.inf != h.count {
			return fmt.Errorf("histogram %q +Inf bucket %d != count %d", key, h.inf, h.count)
		}
	}
	return nil
}
