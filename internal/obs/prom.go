package obs

import (
	"fmt"
	"io"
	"regexp"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4): every counter, gauge, histogram, and progress
// instrument becomes a metric family with a HELP/TYPE pair, and span
// durations are aggregated by name into a labeled family. Instrument
// names are free-form ("cover.greedy_rounds", "stream.block[0,512)"),
// so the writer sanitizes family names to the legal charset and escapes
// label values; a fuzz target pins that no input name can produce an
// invalid exposition line.

// PromContentType is the Content-Type of the text exposition format,
// what the /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot as Prometheus text exposition.
// namespace prefixes every family name ("kanon" unless empty). Families
// are emitted in sorted order, so output is deterministic for a given
// snapshot. A nil snapshot writes nothing and reports no error.
func (s *Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	if s == nil {
		return nil
	}
	if namespace == "" {
		namespace = "kanon"
	}
	e := &promEmitter{w: w, ns: promSanitizeLabelName(namespace), seen: map[string]bool{}}

	for _, name := range sortedKeys(s.Counters) {
		fam := e.family(name, "_total")
		e.head(fam, fmt.Sprintf("obs counter %q", name), "counter")
		e.series(fam, nil, fmt.Sprintf("%d", s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		fam := e.family(name, "")
		e.head(fam, fmt.Sprintf("obs gauge %q (current value)", name), "gauge")
		e.series(fam, nil, fmt.Sprintf("%d", g.Last))
		famMax := e.family(name, "_max")
		e.head(famMax, fmt.Sprintf("obs gauge %q (high-water mark)", name), "gauge")
		e.series(famMax, nil, fmt.Sprintf("%d", g.Max))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fam := e.familyMulti(name, "_bucket", "_sum", "_count")
		e.head(fam, fmt.Sprintf("obs histogram %q (log2 buckets)", name), "histogram")
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			e.series(fam+"_bucket", []promLabel{{"le", fmt.Sprintf("%d", b.Le)}}, fmt.Sprintf("%d", cum))
		}
		e.series(fam+"_bucket", []promLabel{{"le", "+Inf"}}, fmt.Sprintf("%d", h.Count))
		e.series(fam+"_sum", nil, fmt.Sprintf("%d", h.Sum))
		e.series(fam+"_count", nil, fmt.Sprintf("%d", h.Count))
	}
	if len(s.Progress) > 0 {
		done := e.family("progress_done", "")
		e.head(done, "obs progress (work units completed)", "gauge")
		total := e.family("progress_total_units", "")
		e.head(total, "obs progress (work units planned)", "gauge")
		for _, name := range sortedKeys(s.Progress) {
			p := s.Progress[name]
			e.series(done, []promLabel{{"task", name}}, fmt.Sprintf("%d", p.Done))
			e.series(total, []promLabel{{"task", name}}, fmt.Sprintf("%d", p.Total))
		}
	}
	if len(s.Spans) > 0 {
		fam := e.family("span_seconds", "")
		e.head(fam, "cumulative span duration by name", "gauge")
		agg := map[string]int64{}
		var walk func(sp SpanSnapshot)
		walk = func(sp SpanSnapshot) {
			agg[sp.Name] += sp.DurNS
			for _, c := range sp.Children {
				walk(c)
			}
		}
		for _, r := range s.Spans {
			walk(r)
		}
		for _, name := range sortedKeys(agg) {
			e.series(fam, []promLabel{{"span", name}}, fmt.Sprintf("%.9f", float64(agg[name])/1e9))
		}
	}
	return e.err
}

// promLabel is one label pair of a series line.
type promLabel struct{ name, value string }

// promEmitter accumulates exposition lines, deduplicating family names
// that collide after sanitization (distinct raw names can sanitize to
// the same family, and one raw name may back several instrument kinds).
type promEmitter struct {
	w    io.Writer
	ns   string
	seen map[string]bool // family names already emitted or reserved
	err  error
}

// family maps a raw instrument name to a unique sanitized family name
// (namespace prefix, charset sanitization, collision suffix).
func (e *promEmitter) family(raw, suffix string) string {
	return e.familyMulti(raw + suffix)
}

// familyMulti returns a unique family name for raw; extra suffixed
// forms (a histogram's _bucket, _sum, _count series) are reserved
// together so none of them can collide with another family.
func (e *promEmitter) familyMulti(raw string, sufs ...string) string {
	base := e.ns + "_" + promSanitize(raw)
	all := append([]string{""}, sufs...)
	cand := base
	for n := 2; ; n++ {
		ok := true
		for _, suf := range all {
			if e.seen[cand+suf] {
				ok = false
				break
			}
		}
		if ok {
			for _, suf := range all {
				e.seen[cand+suf] = true
			}
			return cand
		}
		cand = fmt.Sprintf("%s_dup%d", base, n)
	}
}

// head writes the HELP/TYPE pair for a family.
func (e *promEmitter) head(fam, help, typ string) {
	e.printf("# HELP %s %s\n", fam, promEscapeHelp(help))
	e.printf("# TYPE %s %s\n", fam, typ)
}

// series writes one sample line.
func (e *promEmitter) series(fam string, labels []promLabel, value string) {
	if len(labels) == 0 {
		e.printf("%s %s\n", fam, value)
		return
	}
	var b strings.Builder
	b.WriteString(fam)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promSanitizeLabelName(l.name))
		b.WriteString(`="`)
		b.WriteString(promEscapeLabelValue(l.value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	e.printf("%s %s\n", b.String(), value)
}

func (e *promEmitter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// promSanitize maps an arbitrary instrument name into the metric-name
// charset [a-zA-Z0-9_]: every illegal byte becomes '_'. Callers always
// prepend the namespace, so a leading digit is never first.
func promSanitize(s string) string {
	if s == "" {
		return "x"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSanitizeLabelName maps a label name into [a-zA-Z0-9_] with a
// non-digit first character.
func promSanitizeLabelName(s string) string {
	out := promSanitize(s)
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promEscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func promEscapeLabelValue(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promEscapeHelp escapes HELP text: backslash and newline.
func promEscapeHelp(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Exposition-lint machinery. LintPrometheus enforces the promtool-style
// rules the unit tests and the fuzz target pin: legal metric and label
// name charsets, escaped label values, every series preceded by its
// family's HELP/TYPE pair, histogram buckets cumulative and capped by
// +Inf. It exists so tests (and callers embedding the exporter) can
// verify arbitrary snapshots render to valid exposition text.

var (
	lintMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintSeriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (\+Inf|-Inf|NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// LintPrometheus validates Prometheus text exposition. It returns nil
// when every line is well-formed and typed, and a descriptive error on
// the first violation.
func LintPrometheus(text []byte) error {
	typed := map[string]string{} // family → TYPE
	helped := map[string]bool{}
	lines := strings.Split(string(text), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !lintMetricName.MatchString(name) {
				return fmt.Errorf("line %d: HELP for illegal metric name %q", ln+1, name)
			}
			if helped[name] {
				return fmt.Errorf("line %d: duplicate HELP for %q", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if !lintMetricName.MatchString(name) {
				return fmt.Errorf("line %d: TYPE for illegal metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q", ln+1, typ)
			}
			if !helped[name] {
				return fmt.Errorf("line %d: TYPE %q without preceding HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typed[name] = typ
		case strings.HasPrefix(line, "#"):
			// Free-form comment: allowed.
		default:
			m := lintSeriesLine.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed series line %q", ln+1, line)
			}
			fam := seriesFamily(m[1], typed)
			if fam == "" {
				return fmt.Errorf("line %d: series %q has no HELP/TYPE pair", ln+1, m[1])
			}
		}
	}
	if err := lintHistograms(lines, typed); err != nil {
		return err
	}
	return nil
}

// seriesFamily resolves a sample name to its typed family, accepting
// the histogram/summary suffixes.
func seriesFamily(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return ""
}

// lintHistograms checks every histogram family: bucket counts are
// cumulative (nondecreasing in le order as emitted), the +Inf bucket is
// present and equals _count.
func lintHistograms(lines []string, typed map[string]string) error {
	type histState struct {
		last    int64
		inf     int64
		hasInf  bool
		count   int64
		hasCnt  bool
		ordered bool
	}
	hists := map[string]*histState{}
	for fam, t := range typed {
		if t == "histogram" {
			hists[fam] = &histState{ordered: true}
		}
	}
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		bare, _, _ := strings.Cut(name, "{")
		var val int64
		fmt.Sscanf(strings.TrimSpace(rest), "%d", &val)
		if base := strings.TrimSuffix(bare, "_bucket"); base != bare {
			h, ok := hists[base]
			if !ok {
				continue
			}
			if strings.Contains(name, `le="+Inf"`) {
				h.hasInf = true
				h.inf = val
			} else {
				if val < h.last {
					h.ordered = false
				}
				h.last = val
			}
		} else if base := strings.TrimSuffix(bare, "_count"); base != bare {
			if h, ok := hists[base]; ok {
				h.hasCnt = true
				h.count = val
			}
		}
	}
	for fam, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %q missing +Inf bucket", fam)
		}
		if !h.ordered {
			return fmt.Errorf("histogram %q buckets not cumulative", fam)
		}
		if h.last > h.inf {
			return fmt.Errorf("histogram %q bucket count exceeds +Inf bucket", fam)
		}
		if h.hasCnt && h.inf != h.count {
			return fmt.Errorf("histogram %q +Inf bucket %d != count %d", fam, h.inf, h.count)
		}
	}
	return nil
}
