package obs

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestReadBuild(t *testing.T) {
	bi := ReadBuild()
	if bi.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", bi.GoVersion, runtime.Version())
	}
	// Test binaries carry build info with the module path.
	if bi.Module == "" {
		t.Error("module path empty in test binary")
	}
	data, err := json.Marshal(bi)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"go_version"`) {
		t.Errorf("JSON missing go_version: %s", data)
	}
}

func TestBuildInfoString(t *testing.T) {
	bi := BuildInfo{
		GoVersion:   "go1.24.0",
		Module:      "kanon",
		Version:     "(devel)",
		VCSRevision: "0123456789abcdef0123",
		VCSModified: true,
	}
	got := bi.String()
	want := "kanon (devel) 0123456789ab+dirty (go1.24.0)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// Degraded: no module, no VCS.
	bare := BuildInfo{GoVersion: "go1.24.0"}
	if got := bare.String(); got != "kanon (go1.24.0)" {
		t.Errorf("bare String() = %q", got)
	}
}
