package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// This file is the durable side of the event vocabulary: where Events
// narrates a run to a log stream, Journal spools a job's lifecycle to an
// append-only events.jsonl next to the job's other artifacts, so the
// history survives the process — and, in cluster mode, names every node
// that touched the job. The sink is injected (the store owns the disk
// discipline); this package owns the record format, the closed event
// vocabulary, and the strict decoder.

// JournalVersion is the format tag every journal line carries. The
// decoder rejects other versions instead of guessing, mirroring the job
// manifest's discipline.
const JournalVersion = "kanon-events/1"

// The closed journal event vocabulary: one constant per lifecycle edge.
// Phase events reuse the Events log vocabulary (phase_start/phase_done);
// lease events mirror the cluster slog events; terminal events share
// their textual form with the job states.
const (
	EvSubmitted           = "submitted"
	EvClaimed             = "claimed"
	EvLeaseRenewed        = "lease_renewed"
	EvLeaseExpired        = "lease_expired"
	EvLeaseStolen         = "lease_stolen"
	EvLeaseReleased       = "lease_released"
	EvLeaseLost           = "lease_lost"
	EvCheckpointCommitted = "checkpoint_committed"
	EvCheckpointResumed   = "checkpoint_resumed"
	EvPhaseStart          = "phase_start"
	EvPhaseDone           = "phase_done"
	EvCancelRequested     = "cancel_requested"
	EvCanceled            = "canceled"
	EvSucceeded           = "succeeded"
	EvFailed              = "failed"
)

// validJournalEvents is the closed set a decoded journal line may carry.
var validJournalEvents = map[string]bool{
	EvSubmitted:           true,
	EvClaimed:             true,
	EvLeaseRenewed:        true,
	EvLeaseExpired:        true,
	EvLeaseStolen:         true,
	EvLeaseReleased:       true,
	EvLeaseLost:           true,
	EvCheckpointCommitted: true,
	EvCheckpointResumed:   true,
	EvPhaseStart:          true,
	EvPhaseDone:           true,
	EvCancelRequested:     true,
	EvCanceled:            true,
	EvSucceeded:           true,
	EvFailed:              true,
}

// JournalEvent is one line of a job's events.jsonl: what happened, when,
// and (in cluster mode) on which node under which fencing token.
type JournalEvent struct {
	// V must be JournalVersion.
	V string `json:"v"`
	// TS is the wall-clock time the event was recorded. Journal order is
	// authoritative (appends serialize through the store's per-job lock);
	// timestamps narrate, they do not order.
	TS time.Time `json:"ts"`
	// Event is one of the Ev* constants.
	Event string `json:"event"`
	// Node identifies the recording node; empty outside cluster mode.
	Node string `json:"node,omitempty"`
	// Fence is the lease fencing token the event was recorded under, for
	// the claim/lease events that carry one.
	Fence uint64 `json:"fence,omitempty"`
	// Phase names the phase for phase_start/phase_done events.
	Phase string `json:"phase,omitempty"`
	// Detail is free-form context: a block range, an error, a cost.
	Detail string `json:"detail,omitempty"`
}

// validate rejects events a reader could not act on safely. Node IDs
// follow the store's job-ID rules (alphanumeric-led, ≤ 64 bytes, no
// path or control bytes) — duplicated here because the store imports
// nothing from it and obs imports nothing from the store.
func (e *JournalEvent) validate() error {
	if e.V != JournalVersion {
		return fmt.Errorf("obs: journal event version %q, want %q", e.V, JournalVersion)
	}
	if !validJournalEvents[e.Event] {
		return fmt.Errorf("obs: unknown journal event %q", e.Event)
	}
	if e.TS.IsZero() {
		return fmt.Errorf("obs: journal event %q missing timestamp", e.Event)
	}
	if e.Node != "" {
		if err := validateJournalNode(e.Node); err != nil {
			return err
		}
	}
	return nil
}

// validateJournalNode vets a node identifier found in a journal line:
// same character rules as the store's job and node IDs.
func validateJournalNode(node string) error {
	if len(node) > 64 {
		return fmt.Errorf("obs: journal node id longer than 64 bytes")
	}
	for i := 0; i < len(node); i++ {
		c := node[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '-' || c == '_' || c == '.'):
		default:
			return fmt.Errorf("obs: journal node id %q has unsafe byte %q at %d", node, c, i)
		}
	}
	return nil
}

// EncodeJournalEvent serializes one event (stamping the version) after
// validation, newline-terminated — exactly one journal line.
func EncodeJournalEvent(e JournalEvent) ([]byte, error) {
	e.V = JournalVersion
	if err := e.validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(&e)
	if err != nil {
		return nil, fmt.Errorf("obs: encoding journal event: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeJournal parses an events.jsonl spool. Untrusted input — the
// bytes come off disk, possibly written by a node that died mid-append —
// so the decoder is strict about everything except the final line: an
// invalid interior line is an error (the spool is corrupt), while a
// torn final line — unterminated, or terminated but undecodable — is
// skipped, never trusted: a crash can only tear the tail, and every
// complete event before it is still authoritative.
func DecodeJournal(b []byte) ([]JournalEvent, error) {
	var events []JournalEvent
	for ln := 1; len(b) > 0; ln++ {
		line := b
		terminated := false
		if i := bytes.IndexByte(b, '\n'); i >= 0 {
			line, b, terminated = b[:i], b[i+1:], true
		} else {
			b = nil
		}
		last := len(b) == 0
		var e JournalEvent
		err := json.Unmarshal(line, &e)
		if err == nil {
			err = e.validate()
		}
		if err != nil {
			if last {
				break // torn tail: skip, never trust
			}
			return nil, fmt.Errorf("obs: journal line %d: %w", ln, err)
		}
		if !terminated {
			break // complete JSON but no newline: the commit byte is missing
		}
		events = append(events, e)
	}
	return events, nil
}

// Journal spools lifecycle events for one job through an injected sink
// (the store's locked, atomic append). It is the durable sibling of
// Events and follows the same contract: a nil *Journal is disabled and
// Record on it is a no-op, so callers never branch on "is journaling
// on". Record stamps the timestamp and the owning node; sink errors go
// to onErr (journaling is observability — it degrades loudly, it never
// fails the job).
type Journal struct {
	node  string
	sink  func(line []byte) error
	onErr func(error)
	mu    sync.Mutex
}

// NewJournal builds a journal writing through sink, stamping node on
// every event that does not carry one. A nil sink yields a nil
// (disabled) journal. onErr, if non-nil, receives append failures.
func NewJournal(node string, sink func(line []byte) error, onErr func(error)) *Journal {
	if sink == nil {
		return nil
	}
	return &Journal{node: node, sink: sink, onErr: onErr}
}

// Record appends one event. Safe for concurrent use; events from one
// journal land in Record order.
func (j *Journal) Record(e JournalEvent) {
	if j == nil {
		return
	}
	if e.Node == "" {
		e.Node = j.node
	}
	if e.TS.IsZero() {
		e.TS = time.Now()
	}
	line, err := EncodeJournalEvent(e)
	if err == nil {
		j.mu.Lock()
		err = j.sink(line)
		j.mu.Unlock()
	}
	if err != nil && j.onErr != nil {
		j.onErr(err)
	}
}
