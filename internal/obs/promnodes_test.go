package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusNodes: a multi-node exposition lints, shares one
// HELP/TYPE head per family, and labels every sample with its node.
func TestWritePrometheusNodes(t *testing.T) {
	a := promSnapshot()
	b := promSnapshot()
	var out strings.Builder
	err := WritePrometheusNodes(&out, "kanon", []NodeSnapshot{
		{Node: "node-b", Snap: b},
		{Node: "node-a", Snap: a},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if err := LintPrometheus([]byte(text)); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`kanon_cover_sets_picked_total{node="node-a"} 12`,
		`kanon_cover_sets_picked_total{node="node-b"} 12`,
		`kanon_stream_queue_depth{node="node-a"} 3`,
		`kanon_stream_queue_depth_max{node="node-b"} 3`,
		`kanon_stream_block_ns_bucket{le="+Inf",node="node-a"} 3`,
		`kanon_stream_block_ns_sum{node="node-b"} 5200`,
		`kanon_stream_block_ns_count{node="node-a"} 3`,
		`kanon_progress_done{task="stream.blocks",node="node-a"} 5`,
		`kanon_span_seconds{span="run",node="node-b"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One family head serves both nodes' samples.
	for _, head := range []string{
		"# TYPE kanon_cover_sets_picked_total counter",
		"# TYPE kanon_stream_block_ns histogram",
	} {
		if got := strings.Count(text, head); got != 1 {
			t.Errorf("%q appears %d times, want 1:\n%s", head, got, text)
		}
	}
	// Node order is sorted regardless of input order.
	if ai, bi := strings.Index(text, `node="node-a"`), strings.Index(text, `node="node-b"`); ai > bi {
		t.Errorf("node-a series should precede node-b:\n%s", text)
	}
}

// TestWritePrometheusNodesSingleUnlabeled: one empty-named entry must
// reproduce the legacy single-node exposition byte for byte —
// WritePrometheus delegates here, and files written by older tooling
// must stay diffable.
func TestWritePrometheusNodesSingleUnlabeled(t *testing.T) {
	snap := promSnapshot()
	var legacy, nodes strings.Builder
	if err := snap.WritePrometheus(&legacy, "kanon"); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusNodes(&nodes, "kanon", []NodeSnapshot{{Snap: snap}}); err != nil {
		t.Fatal(err)
	}
	if legacy.String() != nodes.String() {
		t.Errorf("single unlabeled node diverges from WritePrometheus:\n--- legacy\n%s--- nodes\n%s",
			legacy.String(), nodes.String())
	}
}

// TestWritePrometheusNodesDuplicatesMerge: two snapshots under one node
// name pre-merge into a single series set (duplicate series in one
// family are invalid exposition), without mutating the inputs.
func TestWritePrometheusNodesDuplicatesMerge(t *testing.T) {
	a := &Snapshot{Counters: map[string]int64{"c": 1}}
	b := &Snapshot{Counters: map[string]int64{"c": 2}}
	var out strings.Builder
	err := WritePrometheusNodes(&out, "kanon", []NodeSnapshot{
		{Node: "n", Snap: a},
		{Node: "n", Snap: b},
		{Node: "other", Snap: nil}, // nil snapshots are dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if err := LintPrometheus([]byte(text)); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	if !strings.Contains(text, `kanon_c_total{node="n"} 3`) {
		t.Errorf("duplicate node counters not summed:\n%s", text)
	}
	if strings.Contains(text, "other") {
		t.Errorf("nil snapshot's node leaked into the exposition:\n%s", text)
	}
	if a.Counters["c"] != 1 || b.Counters["c"] != 2 {
		t.Errorf("inputs mutated by merge: a=%d b=%d", a.Counters["c"], b.Counters["c"])
	}
}

// TestWritePrometheusNodesCollisions: sanitize collisions across
// instrument kinds still lint when every sample carries a node label.
func TestWritePrometheusNodesCollisions(t *testing.T) {
	snap := &Snapshot{
		Counters: map[string]int64{"a.b": 1, "a_b": 2, "h_count": 3},
		Histograms: map[string]HistogramStat{
			"h": {Count: 1, Sum: 1, Buckets: []HistogramBucket{{Le: 1, Count: 1}}},
		},
	}
	var out strings.Builder
	err := WritePrometheusNodes(&out, "kanon", []NodeSnapshot{
		{Node: "node-a", Snap: snap},
		{Node: "node-b", Snap: snap},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if err := LintPrometheus([]byte(text)); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	if !strings.Contains(text, "_dup2") {
		t.Errorf("colliding names did not get a dedup suffix:\n%s", text)
	}
}

// TestSnapshotMergeOrdersSpansByWallClock: roots from two tracers
// (different processes, incomparable monotonic clocks) interleave by
// their wall-clock anchors — the property that stitches a stolen job's
// two segments into one chronological timeline.
func TestSnapshotMergeOrdersSpansByWallClock(t *testing.T) {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	mk := func(name string, start time.Time) SpanSnapshot {
		return SpanSnapshot{Name: name, WallNS: start.UnixNano(), DurNS: int64(time.Second)}
	}
	a := &Snapshot{Spans: []SpanSnapshot{mk("job@node-a", t0)}}
	b := &Snapshot{Spans: []SpanSnapshot{
		mk("job@node-b", t0.Add(30 * time.Second)),
		mk("job@node-b", t0.Add(-5 * time.Second)), // e.g. an earlier aborted segment
	}}
	b.Merge(a)
	names := make([]string, len(b.Spans))
	var lastWall int64 = -1 << 62
	for i, sp := range b.Spans {
		names[i] = sp.Name
		if sp.WallNS < lastWall {
			t.Fatalf("spans out of wall order at %d: %v", i, b.Spans)
		}
		lastWall = sp.WallNS
	}
	want := []string{"job@node-b", "job@node-a", "job@node-b"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("merged root order %v, want %v", names, want)
		}
	}
}

// TestSnapshotFreshUnderConcurrentPolling pins the span-freshness fix:
// every poll of a live tracer takes its "now" per root under the lock,
// so an unfinished span's duration never decreases between polls and a
// child never outlives its root within one snapshot.
func TestSnapshotFreshUnderConcurrentPolling(t *testing.T) {
	tr := New()
	root := tr.Start("job")
	child := root.Start("anonymize")
	defer func() { child.End(); root.End() }()

	const pollers = 4
	var wg sync.WaitGroup
	errs := make(chan string, pollers)
	for p := 0; p < pollers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastRoot int64 = -1
			for i := 0; i < 200; i++ {
				snap := tr.Snapshot()
				if len(snap.Spans) != 1 {
					errs <- "snapshot lost the root span"
					return
				}
				r := snap.Spans[0]
				// Monotonic per poller: an unfinished span only grows.
				if r.DurNS < lastRoot {
					errs <- "root DurNS shrank between polls"
					return
				}
				lastRoot = r.DurNS
				// Internally consistent: the child started after the root
				// and cannot extend past the root's measured duration.
				for _, c := range r.Children {
					if c.StartNS < 0 || c.StartNS+c.DurNS > r.DurNS {
						errs <- "child span extends past its root within one snapshot"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
