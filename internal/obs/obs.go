// Package obs is the repository's zero-dependency observability layer:
// span timers over the monotonic clock, atomic counters and gauges, and
// a registry snapshot that serializes to JSON. The hot paths of the
// greedy algorithms (internal/algo, internal/cover), the streaming
// pipeline (internal/stream), and the exact/pattern solvers thread
// their instrumentation through this package; the public facade exposes
// the result as kanon.Result.Stats and the CLIs render it with -trace.
//
// Everything is nil-safe by construction: a nil *Tracer is the disabled
// tracer, a nil *Span or *Counter is a disabled instrument, and every
// method on them is a nil-check no-op. Instrumented code therefore
// never branches on "is tracing on" — it calls the same methods either
// way, and the disabled path costs one nil check per call (the obs test
// suite pins this to zero allocations). Crucially, disabled spans take
// no clock readings, so Workers>1 determinism and benchmark numbers are
// unchanged when tracing is off.
//
// Span durations come from time.Since on time.Time values that carry
// Go's monotonic clock reading, so wall-clock adjustments (NTP steps)
// cannot corrupt phase timings.
package obs

import (
	"sync"
	"time"
)

// Tracer owns one run's span forest and metric registry. Create one per
// traced operation with New, start a root span, and pass spans down the
// call tree. All methods are safe for concurrent use; a nil *Tracer
// disables everything downstream of it.
type Tracer struct {
	mu         sync.Mutex
	roots      []*Span
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	progress   map[string]*Progress
}

// New returns an enabled tracer with an empty registry.
func New() *Tracer { return &Tracer{} }

// Start opens a root span. On a nil tracer it returns a nil (disabled)
// span without reading the clock.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Counter returns the named counter, creating it on first use. Distinct
// names are distinct counters; the same name always returns the same
// counter, so concurrent holders share one atomic cell. Returns nil
// (a disabled counter) on a nil tracer.
//
// Lookup takes the registry lock — hot loops should hoist the *Counter
// out and call Add on it directly.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counters == nil {
		t.counters = make(map[string]*Counter)
	}
	c := t.counters[name]
	if c == nil {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// tracer. Same hoisting advice as Counter.
func (t *Tracer) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gauges == nil {
		t.gauges = make(map[string]*Gauge)
	}
	g := t.gauges[name]
	if g == nil {
		g = &Gauge{}
		t.gauges[name] = g
	}
	return g
}

// Span is one timed region of a run. Spans form a tree: children are
// opened with Start and may be created concurrently (the stream workers
// open block spans under one parent). A nil *Span is disabled — Start
// returns nil, End does nothing, and no clock is read.
type Span struct {
	tr       *Tracer
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
	attached []SpanSnapshot
}

// Start opens a child span under s.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End freezes the span's duration. The first End wins; later calls are
// no-ops, so `defer sp.End()` composes with early explicit Ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = d
	}
	s.tr.mu.Unlock()
}

// Attach grafts pre-measured span snapshots under s as extra children —
// how the CLI splices the facade's Result.Stats subtree into its own
// whole-run tree. Attached snapshots keep their recorded durations.
func (s *Span) Attach(children ...SpanSnapshot) {
	if s == nil || len(children) == 0 {
		return
	}
	s.tr.mu.Lock()
	s.attached = append(s.attached, children...)
	s.tr.mu.Unlock()
}

// Counter is shorthand for s.Tracer().Counter(name); nil-safe.
func (s *Span) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.tr.Counter(name)
}

// Gauge is shorthand for s.Tracer().Gauge(name); nil-safe.
func (s *Span) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.tr.Gauge(name)
}

// Tracer returns the owning tracer (nil for a disabled span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}
