package generalize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/relation"
)

func TestHierarchyBasics(t *testing.T) {
	h := NewHierarchy("*")
	h.MustAdd("20-40", "*")
	h.MustAdd("22", "20-40")
	h.MustAdd("36", "20-40")
	if h.Root() != "*" {
		t.Errorf("Root = %q", h.Root())
	}
	if got := h.Level("22"); got != 2 {
		t.Errorf("Level(22) = %d, want 2", got)
	}
	if got := h.Level("*"); got != 0 {
		t.Errorf("Level(*) = %d, want 0", got)
	}
	lca, ca, cb := h.LCA("22", "36")
	if lca != "20-40" || ca != 1 || cb != 1 {
		t.Errorf("LCA(22,36) = (%q,%d,%d)", lca, ca, cb)
	}
	lca, _, _ = h.LCA("22", "unseen")
	if lca != "*" {
		t.Errorf("LCA with unknown label = %q, want root", lca)
	}
	if got := h.LCAAll([]string{"22", "36", "22"}); got != "20-40" {
		t.Errorf("LCAAll = %q", got)
	}
	if got := h.LCAAll(nil); got != "*" {
		t.Errorf("LCAAll(nil) = %q, want root", got)
	}
	climb, err := h.Climb("22", "*")
	if err != nil || climb != 2 {
		t.Errorf("Climb(22,*) = (%d,%v)", climb, err)
	}
	if _, err := h.Climb("22", "36"); err == nil {
		t.Error("Climb accepted a non-ancestor")
	}
}

func TestHierarchyAddErrors(t *testing.T) {
	h := NewHierarchy("*")
	h.MustAdd("a", "*")
	if err := h.Add("a", "b"); err == nil {
		t.Error("accepted conflicting parent")
	}
	if err := h.Add("a", "*"); err != nil {
		t.Errorf("idempotent re-add rejected: %v", err)
	}
	if err := h.Add("*", "a"); err == nil {
		t.Error("accepted parent for root")
	}
	h.MustAdd("b", "a")
	if err := h.Add("a", "b"); err == nil {
		t.Error("accepted parent cycle")
	}
}

func TestSuppressionHierarchy(t *testing.T) {
	h := Suppression()
	lca, ca, cb := h.LCA("x", "y")
	if lca != relation.StarString || ca != 1 || cb != 1 {
		t.Errorf("LCA(x,y) = (%q,%d,%d), want (*,1,1)", lca, ca, cb)
	}
	lca, ca, cb = h.LCA("x", "x")
	if lca != "x" || ca != 0 || cb != 0 {
		t.Errorf("LCA(x,x) = (%q,%d,%d), want (x,0,0)", lca, ca, cb)
	}
}

// TestDistanceIsMetric: the scheme-induced dissimilarity obeys the
// triangle inequality (it is a sum of tree metrics).
func TestDistanceIsMetric(t *testing.T) {
	h := NewHierarchy("*")
	h.MustAdd("lo", "*")
	h.MustAdd("hi", "*")
	for _, v := range []string{"1", "2", "3"} {
		h.MustAdd(v, "lo")
	}
	for _, v := range []string{"7", "8", "9"} {
		h.MustAdd(v, "hi")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := []string{"1", "2", "3", "7", "8", "9"}
		pick := func() []string {
			return []string{vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]}
		}
		tab := relation.NewTable(relation.NewSchema("a", "b"))
		for i := 0; i < 3; i++ {
			if err := tab.AppendStrings(pick()...); err != nil {
				return false
			}
		}
		s := Scheme{h, h}
		duv := Distance(tab, s, 0, 1)
		if duv != Distance(tab, s, 1, 0) {
			return false
		}
		if Distance(tab, s, 0, 0) != 0 {
			return false
		}
		return Distance(tab, s, 0, 2) <= duv+Distance(tab, s, 1, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// hospital reproduces the paper's §1 relation and hierarchies.
func hospital() (*relation.Table, Scheme) {
	tab := relation.NewTable(relation.NewSchema("first", "last", "age", "race"))
	for _, r := range [][]string{
		{"Harry", "Stone", "34", "Afr-Am"},
		{"John", "Reyser", "36", "Cauc"},
		{"Beatrice", "Stone", "47", "Afr-Am"},
		{"John", "Ramos", "22", "Hisp"},
	} {
		if err := tab.AppendStrings(r...); err != nil {
			panic(err)
		}
	}
	last := NewHierarchy("*")
	last.MustAdd("R*", "*")
	last.MustAdd("S*", "*")
	last.MustAdd("Reyser", "R*")
	last.MustAdd("Ramos", "R*")
	last.MustAdd("Stone", "S*")
	age := NewHierarchy("*")
	age.MustAdd("20-40", "*")
	age.MustAdd("40-60", "*")
	age.MustAdd("22", "20-40")
	age.MustAdd("34", "20-40")
	age.MustAdd("36", "20-40")
	age.MustAdd("47", "40-60")
	return tab, Scheme{Suppression(), last, age, Suppression()}
}

// TestHospitalExample reproduces the paper's §1 2-anonymization: with
// groups {Harry Stone, Beatrice Stone} and {John Reyser, John Ramos},
// the output matches the printed table.
func TestHospitalExample(t *testing.T) {
	tab, scheme := hospital()
	p := &core.Partition{Groups: [][]int{{0, 2}, {1, 3}}}
	r, err := Apply(tab, p, scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"*", "Stone", "*", "Afr-Am"},
		{"John", "R*", "20-40", "*"},
		{"*", "Stone", "*", "Afr-Am"},
		{"John", "R*", "20-40", "*"},
	}
	for i := range want {
		if strings.Join(r.Rows[i], ",") != strings.Join(want[i], ",") {
			t.Errorf("row %d = %v, want %v", i, r.Rows[i], want[i])
		}
	}
	// Cost: row pairs climb — group A: first 1+1, last 0, age… 34 and
	// 47 have LCA *, climbs 2+2; race 0 ⇒ 6. Group B: first 0, last
	// 1+1, age 1+1, race 1+1 ⇒ 6. Total 12.
	if r.Cost != 12 {
		t.Errorf("cost = %d, want 12", r.Cost)
	}
}

// TestAnonymizeFindsHospitalGrouping: the ball-greedy under the
// generalization metric should recover the paper's grouping on its own.
func TestAnonymizeFindsHospitalGrouping(t *testing.T) {
	tab, scheme := hospital()
	r, err := Anonymize(tab, 2, scheme)
	if err != nil {
		t.Fatal(err)
	}
	r.Partition.Normalize()
	if len(r.Partition.Groups) != 2 {
		t.Fatalf("groups = %v", r.Partition.Groups)
	}
	g0 := r.Partition.Groups[0]
	if !(len(g0) == 2 && g0[0] == 0 && g0[1] == 2) {
		t.Errorf("first group = %v, want [0 2] (the Stones)", g0)
	}
	if r.Cost != 12 {
		t.Errorf("cost = %d, want 12", r.Cost)
	}
}

func TestApplyValidation(t *testing.T) {
	tab, scheme := hospital()
	bad := &core.Partition{Groups: [][]int{{0}, {1, 2, 3}}}
	if _, err := Apply(tab, bad, scheme, 2); err == nil {
		t.Error("accepted undersized group")
	}
	short := Scheme{Suppression()}
	good := &core.Partition{Groups: [][]int{{0, 2}, {1, 3}}}
	if _, err := Apply(tab, good, short, 2); err == nil {
		t.Error("accepted wrong-length scheme")
	}
}

func TestAnonymizeErrors(t *testing.T) {
	tab, scheme := hospital()
	if _, err := Anonymize(tab, 0, scheme); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Anonymize(tab, 9, scheme); err == nil {
		t.Error("accepted n < k")
	}
	if _, err := Anonymize(tab, 2, scheme[:2]); err == nil {
		t.Error("accepted wrong-length scheme")
	}
}

func TestAnonymizeK1(t *testing.T) {
	tab, scheme := hospital()
	r, err := Anonymize(tab, 1, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("k=1 cost = %d, want 0", r.Cost)
	}
	if r.Rows[0][0] != "Harry" {
		t.Errorf("k=1 should leave rows untouched, got %v", r.Rows[0])
	}
}

// TestSuppressionSchemeMatchesSuppressionCost: under all-suppression
// hierarchies, Apply's cost equals exactly the partition suppressor's
// star count (the models coincide).
func TestSuppressionSchemeMatchesSuppressionCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		tab := dataset.Uniform(rng, 10, 4, 3)
		p := &core.Partition{Groups: [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8, 9}}}
		r, err := Apply(tab, p, ForTable(tab), 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Cost(tab); r.Cost != want {
			t.Fatalf("trial %d: generalize cost %d != suppression cost %d", trial, r.Cost, want)
		}
	}
}

// TestAnonymizeGeneralOutputAnonymous on random data with a mid-level
// hierarchy.
func TestAnonymizeRandomHierarchies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHierarchy("*")
	for g := 0; g < 3; g++ {
		mid := "g" + string(rune('A'+g))
		h.MustAdd(mid, "*")
		for v := 0; v < 4; v++ {
			h.MustAdd(string(rune('a'+g*4+v)), mid)
		}
	}
	tab := relation.NewTable(relation.NewSchema("x", "y", "z"))
	for i := 0; i < 18; i++ {
		row := make([]string, 3)
		for j := range row {
			row[j] = string(rune('a' + rng.Intn(12)))
		}
		if err := tab.AppendStrings(row...); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Anonymize(tab, 3, Scheme{h, h, h})
	if err != nil {
		t.Fatal(err)
	}
	if !isKAnonymousRows(r.Rows, 3) {
		t.Error("output not 3-anonymous")
	}
	if r.Cost <= 0 {
		t.Error("random 18-row table should have positive generalization cost")
	}
}
