// Package generalize extends the suppression machinery to full domain
// generalization hierarchies (DGHs) — the paper's §1 setting where "the
// specification of 20-40, R*, etc. as admissible generalizations must be
// given prior to the input". Suppression is the special case of a
// two-level hierarchy (value → ★), which is why the paper studies it in
// isolation; this package reproduces the intro's hospital example and
// lets the ball-greedy algorithm run under generalization costs.
//
// A Hierarchy is a tree over value labels with a single root. The cost
// of generalizing a cell from value v to an ancestor a is the number of
// tree edges climbed. A group of rows generalizes each column to the
// least common ancestor of its values, and the induced pairwise
// dissimilarity
//
//	d(u, v) = Σ_j [climb(u[j] → lca) + climb(v[j] → lca)]
//
// is a sum of tree metrics, hence a metric — so the cover machinery of
// §4.2/§4.3 applies unchanged.
package generalize

import (
	"context"
	"fmt"

	"kanon/internal/core"
	"kanon/internal/cover"
	"kanon/internal/metric"
	"kanon/internal/relation"
)

// Hierarchy is a generalization tree over string labels. Leaves are the
// raw attribute values; the root is typically relation.StarString.
type Hierarchy struct {
	root   string
	parent map[string]string
}

// NewHierarchy returns a hierarchy with only a root label.
func NewHierarchy(root string) *Hierarchy {
	return &Hierarchy{root: root, parent: make(map[string]string)}
}

// Suppression returns the two-level hierarchy value → ★ that makes
// generalization coincide with the paper's suppression model. Values not
// added explicitly are adopted lazily: any unknown label is treated as a
// direct child of the root.
func Suppression() *Hierarchy { return NewHierarchy(relation.StarString) }

// Add declares child's parent. It returns an error on conflicting
// re-declarations, on a child equal to the root, or if the edge would
// close a cycle.
func (h *Hierarchy) Add(child, parent string) error {
	if child == h.root {
		return fmt.Errorf("generalize: cannot give the root %q a parent", child)
	}
	if prev, ok := h.parent[child]; ok && prev != parent {
		return fmt.Errorf("generalize: %q already has parent %q", child, prev)
	}
	// Walk up from parent; reaching child means a cycle.
	for p := parent; p != h.root; {
		if p == child {
			return fmt.Errorf("generalize: edge %q→%q closes a cycle", child, parent)
		}
		next, ok := h.parent[p]
		if !ok {
			break // parent chain not yet declared; it attaches to root lazily
		}
		p = next
	}
	h.parent[child] = parent
	return nil
}

// MustAdd is Add that panics on error; for fixed example hierarchies.
func (h *Hierarchy) MustAdd(child, parent string) {
	if err := h.Add(child, parent); err != nil {
		panic(err)
	}
}

// Root returns the hierarchy's root label.
func (h *Hierarchy) Root() string { return h.root }

// chain returns the path from value up to and including the root.
// Unknown labels are treated as direct children of the root.
func (h *Hierarchy) chain(value string) []string {
	out := []string{value}
	cur := value
	for cur != h.root {
		next, ok := h.parent[cur]
		if !ok {
			next = h.root
		}
		out = append(out, next)
		cur = next
	}
	return out
}

// Chain returns a copy of the path from value up to and including the
// root. Unknown labels attach directly below the root.
func (h *Hierarchy) Chain(value string) []string {
	return append([]string(nil), h.chain(value)...)
}

// Parent returns the label one edge above value; the root is its own
// parent, and unknown labels parent to the root.
func (h *Hierarchy) Parent(value string) string {
	if value == h.root {
		return h.root
	}
	if p, ok := h.parent[value]; ok {
		return p
	}
	return h.root
}

// Level returns the number of edges from value down from the root — the
// generalization headroom of the value.
func (h *Hierarchy) Level(value string) int { return len(h.chain(value)) - 1 }

// LCA returns the least common ancestor of two labels and the number of
// edges each climbs to reach it.
func (h *Hierarchy) LCA(a, b string) (lca string, climbA, climbB int) {
	ca, cb := h.chain(a), h.chain(b)
	depth := map[string]int{}
	for i, v := range ca {
		if _, ok := depth[v]; !ok {
			depth[v] = i
		}
	}
	for j, v := range cb {
		if i, ok := depth[v]; ok {
			return v, i, j
		}
	}
	// Unreachable: both chains end at the root.
	return h.root, len(ca) - 1, len(cb) - 1
}

// LCAAll folds LCA over a label set.
func (h *Hierarchy) LCAAll(values []string) string {
	if len(values) == 0 {
		return h.root
	}
	cur := values[0]
	for _, v := range values[1:] {
		cur, _, _ = h.LCA(cur, v)
	}
	return cur
}

// Climb returns the edge count from value up to ancestor, or an error if
// ancestor is not on value's chain.
func (h *Hierarchy) Climb(value, ancestor string) (int, error) {
	for i, v := range h.chain(value) {
		if v == ancestor {
			return i, nil
		}
	}
	return 0, fmt.Errorf("generalize: %q is not an ancestor of %q", ancestor, value)
}

// Scheme assigns one hierarchy per column. A nil entry means plain
// suppression for that column.
type Scheme []*Hierarchy

// ForTable returns an all-suppression scheme matching t's degree.
func ForTable(t *relation.Table) Scheme {
	s := make(Scheme, t.Degree())
	for j := range s {
		s[j] = Suppression()
	}
	return s
}

func (s Scheme) col(j int) *Hierarchy {
	if s[j] == nil {
		return Suppression()
	}
	return s[j]
}

// Result is a generalization outcome: string-valued output rows (labels
// may be internal hierarchy nodes, so they live outside the original
// alphabet), the partition used, and the total climb cost.
type Result struct {
	K         int
	Partition *core.Partition
	Rows      [][]string
	Cost      int
}

// Apply generalizes each group of p to column-wise LCAs under the
// scheme, returning the output rows and total cost (sum over cells of
// edges climbed).
func Apply(t *relation.Table, p *core.Partition, s Scheme, k int) (*Result, error) {
	if len(s) != t.Degree() {
		return nil, fmt.Errorf("generalize: scheme has %d hierarchies for degree %d", len(s), t.Degree())
	}
	if err := p.Validate(t.Len(), k, 0); err != nil {
		return nil, fmt.Errorf("generalize: %w", err)
	}
	rows := make([][]string, t.Len())
	cost := 0
	for _, g := range p.Groups {
		for j := 0; j < t.Degree(); j++ {
			h := s.col(j)
			vals := make([]string, len(g))
			for gi, i := range g {
				vals[gi] = t.Schema().Attribute(j).Value(t.Row(i)[j])
			}
			lca := h.LCAAll(vals)
			for gi, i := range g {
				if rows[i] == nil {
					rows[i] = make([]string, t.Degree())
				}
				rows[i][j] = lca
				climb, err := h.Climb(vals[gi], lca)
				if err != nil {
					return nil, fmt.Errorf("generalize: internal: %w", err)
				}
				cost += climb
			}
		}
	}
	return &Result{K: k, Partition: p, Rows: rows, Cost: cost}, nil
}

// Distance returns the scheme-induced dissimilarity between rows i and
// j: per column, the edges both cells climb to their LCA.
func Distance(t *relation.Table, s Scheme, i, j int) int {
	d := 0
	for col := 0; col < t.Degree(); col++ {
		h := s.col(col)
		a := t.Schema().Attribute(col).Value(t.Row(i)[col])
		b := t.Schema().Attribute(col).Value(t.Row(j)[col])
		_, ca, cb := h.LCA(a, b)
		d += ca + cb
	}
	return d
}

// Anonymize groups rows with the paper's ball-greedy cover under the
// generalization metric and generalizes each group, yielding a
// k-anonymous generalized release.
func Anonymize(t *relation.Table, k int, s Scheme) (*Result, error) {
	return AnonymizeCtx(context.Background(), t, k, s, 1)
}

// AnonymizeCtx is Anonymize with cancellation and parallelism: the
// O(n²) hierarchy-distance matrix fill polls ctx per row and shards
// rows across workers (0 means all CPUs), and the greedy cover polls
// per round, so a cancelled run aborts promptly. The release is
// byte-identical for every worker count; a non-nil error wraps
// ctx.Err().
func AnonymizeCtx(ctx context.Context, t *relation.Table, k int, s Scheme, workers int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("generalize: k = %d < 1", k)
	}
	if t.Len() < k {
		return nil, fmt.Errorf("generalize: n = %d < k = %d", t.Len(), k)
	}
	if len(s) != t.Degree() {
		return nil, fmt.Errorf("generalize: scheme has %d hierarchies for degree %d", len(s), t.Degree())
	}
	if k == 1 {
		p := &core.Partition{}
		for i := 0; i < t.Len(); i++ {
			p.Groups = append(p.Groups, []int{i})
		}
		return Apply(t, p, s, k)
	}
	mat, err := metric.NewMatrixFuncCtx(ctx, t.Len(), workers, func(i, j int) int { return Distance(t, s, i, j) })
	if err != nil {
		return nil, fmt.Errorf("generalize: %w", err)
	}
	chosen, err := cover.GreedyBallsCtx(ctx, mat, k, workers, nil)
	if err != nil {
		return nil, fmt.Errorf("generalize: %w", err)
	}
	p, err := cover.Reduce(t.Len(), chosen, k)
	if err != nil {
		return nil, fmt.Errorf("generalize: %w", err)
	}
	// Oversize groups force generalization to the join of many values;
	// the (k, 2k−1) split of §4.1 with proximity ordering recovers
	// fine-grained groups (on the §1 hospital table, exactly the
	// paper's published grouping).
	p.SplitOversizeSorted(k, mat)
	res, err := Apply(t, p, s, k)
	if err != nil {
		return nil, err
	}
	if !isKAnonymousRows(res.Rows, k) {
		return nil, fmt.Errorf("generalize: internal: output not %d-anonymous", k)
	}
	return res, nil
}

// isKAnonymousRows checks k-anonymity of string rows directly.
func isKAnonymousRows(rows [][]string, k int) bool {
	counts := map[string]int{}
	keys := make([]string, len(rows))
	for i, r := range rows {
		key := ""
		for _, c := range r {
			key += c + "\x00"
		}
		keys[i] = key
		counts[key]++
	}
	for _, key := range keys {
		if counts[key] < k {
			return false
		}
	}
	return true
}
