// Package stream anonymizes tables too large for the quadratic
// machinery (or for memory) by processing rows in bounded blocks: each
// block is k-anonymized independently, and the concatenation of
// k-anonymous blocks is k-anonymous (every row's k-group lives inside
// its own block). Cost is monotone in block size — a bigger block can
// only offer the greedy more grouping options — which the tests verify
// on fixed corpora, making block size a pure memory/quality dial.
//
// Blocks are independent, so they are anonymized concurrently through a
// bounded worker pool and reassembled in input order; the released
// table is byte-identical for every worker count.
//
// This is a systems extension, not part of the paper; it is what makes
// the Theorem 4.2 algorithm deployable on inputs where even the O(n²)
// distance matrix is unaffordable.
package stream

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kanon/internal/algo"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/refine"
	"kanon/internal/relation"
)

// Options configures the streaming pass.
type Options struct {
	// Ctx cancels or bounds the pass: it is checked before each block
	// is claimed (and threaded into the default per-block algorithm), so
	// a cancelled run stops admitting blocks promptly and returns an
	// error wrapping ctx.Err(). Nil means context.Background().
	Ctx context.Context
	// BlockRows is the maximum rows anonymized at once (default 1024,
	// minimum 2k).
	BlockRows int
	// Refine applies cost-direct local search inside each block.
	Refine bool
	// RefineOpts tunes the per-block local search when Refine is set
	// (MaxRounds, NoDissolve); nil runs the defaults, preserving the
	// historical behavior. The pass's Ctx is threaded into the search
	// regardless, overriding any Ctx set here.
	RefineOpts *refine.Options
	// Checkpoint, when non-nil, persists every completed block (its
	// anonymized rows and BlockStat) and lets an interrupted pass
	// resume: blocks the sink already holds are loaded instead of
	// recomputed. Block bounds depend only on (rows, k, BlockRows) and
	// every per-block algorithm is deterministic, so a resumed run's
	// release is byte-identical to an uninterrupted one. A checkpoint
	// whose shape does not match its block (changed parameters, torn
	// write) is ignored and the block is recomputed.
	Checkpoint Checkpoint
	// Workers bounds how many blocks are anonymized concurrently: 0 (or
	// negative) means runtime.NumCPU(), 1 forces the sequential path.
	// Output and errors are identical for every worker count.
	Workers int
	// Kernel selects the distance-kernel backend of the default
	// per-block algorithm (metric.Auto, Dense, or Bitset); ignored when
	// Algo is set. The release is byte-identical for every choice.
	Kernel metric.Choice
	// Algo runs per block; nil means algo.GreedyBall with defaults. A
	// custom Algo must be safe for concurrent calls when Workers != 1
	// (the default GreedyBall is).
	Algo func(t *relation.Table, k int) (*algo.Result, error)
	// Trace is the parent span instrumentation attaches under: a
	// "stream" child span holding one span per block, a queue-depth
	// gauge, worker-utilization counters, per-block latency/cost
	// histograms, and a blocks-completed progress instrument. Nil
	// disables it; the release is byte-identical either way.
	Trace *obs.Span
	// Log receives structured events: block-size raises, worker
	// lifecycle. Nil (the default) is silent; events never steer the
	// computation.
	Log *obs.Events
}

// Checkpoint persists completed blocks so a crashed or cancelled pass
// can resume without redoing them. Implementations must be safe for
// concurrent Save calls (each block is saved at most once per pass,
// from whichever worker finishes it); Load is only called before the
// workers start. Rows cross the interface as rendered strings — the
// release's own representation — so a sink can spool them through any
// codec without sharing the table's interning state.
type Checkpoint interface {
	// Load returns the saved block for the exact range [lo, hi), or
	// ok=false if the sink has no (complete) record of it. An error
	// aborts the pass.
	Load(lo, hi int) (rows [][]string, stat *BlockStat, ok bool, err error)
	// Save durably records a block the pass just completed. An error
	// aborts the pass: a run that cannot keep its durability promise
	// fails loudly instead of degrading silently.
	Save(stat BlockStat, rows [][]string) error
}

// BlockStat records one block's outcome for observability: its row
// range in the input, its suppression cost, and — when Options.Refine
// is set — what the local search bought.
type BlockStat struct {
	// Lo and Hi delimit the block's input rows [Lo, Hi).
	Lo, Hi int
	// Cost is the stars the block contributed to the release.
	Cost int
	// Refine holds the block's local-search statistics (rounds, moves,
	// cost before/after); nil unless Options.Refine was set.
	Refine *refine.Stats
}

// Result aggregates the streamed anonymization.
type Result struct {
	// Anonymized holds the full output table (same schema and row order
	// as the input).
	Anonymized *relation.Table
	// Cost is the total stars inserted.
	Cost int
	// Blocks is how many blocks were processed.
	Blocks int
	// BlocksResumed is how many of them were loaded from the Checkpoint
	// sink instead of recomputed; 0 without a checkpoint.
	BlocksResumed int
	// BlockStats has one entry per block, in input order.
	BlockStats []BlockStat
}

// blockResult is one block's output, held until ordered reassembly:
// either a freshly anonymized sub-table (sharing the input's schema) or
// the rendered rows a checkpoint replayed.
type blockResult struct {
	anon    *relation.Table
	rows    [][]string
	stat    BlockStat
	resumed bool
}

// Anonymize processes t in blocks and returns the concatenated
// k-anonymous release.
func Anonymize(t *relation.Table, k int, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		return nil, fmt.Errorf("stream: k = %d < 1", k)
	}
	n := t.Len()
	if n < k {
		return nil, fmt.Errorf("stream: table has %d rows, fewer than k = %d", n, k)
	}
	block := opt.BlockRows
	if block <= 0 {
		block = 1024
	}
	if block < 2*k {
		opt.Log.Anomaly("block_raised", int64(2*k-block))
		block = 2 * k
	}
	bounds := blockBounds(n, k, block)
	results := make([]blockResult, len(bounds))
	errs := make([]error, len(bounds))

	// Resume: blocks the checkpoint sink already holds are replayed
	// verbatim; only the remainder is anonymized. A record whose shape
	// does not match the block it claims to be (parameters changed, torn
	// write) is dropped and recomputed.
	pending := len(bounds)
	if opt.Checkpoint != nil {
		for bi, b := range bounds {
			lo, hi := b[0], b[1]
			rows, stat, ok, err := opt.Checkpoint.Load(lo, hi)
			if err != nil {
				return nil, fmt.Errorf("stream: loading checkpoint for block [%d,%d): %w", lo, hi, err)
			}
			if !ok {
				continue
			}
			if stat == nil || stat.Lo != lo || stat.Hi != hi || len(rows) != hi-lo || !rowsMatchDegree(rows, t.Degree()) {
				opt.Log.Anomaly("checkpoint_invalid", int64(hi-lo))
				continue
			}
			results[bi] = blockResult{rows: rows, stat: *stat, resumed: true}
			pending--
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(bounds) {
		workers = len(bounds)
	}

	// Instrumentation: a "stream" span over the whole pass, one child
	// span per block (opened by whichever worker claims it), a gauge for
	// blocks not yet finished, and busy-time counters from which worker
	// utilization falls out as busy_ns / (workers · wall_ns). All of it
	// is nil-safe no-ops when opt.Trace is nil, and none of it touches
	// the block results, so the release stays byte-identical.
	sp := opt.Trace.Start("stream")
	defer sp.End()
	queue := sp.Gauge("stream.queue_depth")
	busy := sp.Counter("stream.worker_busy_ns")
	blocksDone := sp.Counter("stream.blocks_done")
	blockNS := sp.Histogram("stream.block_ns")
	blockCost := sp.Histogram("stream.block_cost")
	progress := sp.Progress("stream.blocks")
	progress.SetTotal(int64(len(bounds)))
	progress.Add(int64(len(bounds) - pending))
	sp.Counter("stream.blocks_resumed").Add(int64(len(bounds) - pending))
	queue.Set(int64(pending))
	sp.Gauge("stream.workers").Set(int64(workers))
	passStart := time.Time{}
	if sp != nil {
		passStart = time.Now()
		defer func() {
			sp.Counter("stream.wall_ns").Add(int64(time.Since(passStart)))
		}()
	}

	process := func(bi int) {
		if results[bi].resumed {
			return
		}
		lo, hi := bounds[bi][0], bounds[bi][1]
		if err := ctx.Err(); err != nil {
			errs[bi] = fmt.Errorf("stream: block [%d,%d): %w", lo, hi, err)
			return
		}
		var bs *obs.Span
		if sp != nil {
			bs = sp.Start(fmt.Sprintf("stream.block[%d,%d)", lo, hi))
			blockStart := time.Now()
			defer func() {
				d := time.Since(blockStart)
				busy.Add(int64(d))
				blockNS.ObserveDuration(d)
				queue.Add(-1)
				blocksDone.Inc()
				progress.Add(1)
				bs.End()
			}()
		}
		indices := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			indices = append(indices, i)
		}
		sub := t.SubTable(indices)
		var r *algo.Result
		var err error
		if opt.Algo != nil {
			r, err = opt.Algo(sub, k)
		} else {
			r, err = algo.GreedyBall(sub, k, &algo.Options{Ctx: ctx, Trace: bs, Kernel: opt.Kernel})
		}
		if err != nil {
			errs[bi] = fmt.Errorf("stream: block [%d,%d): %w", lo, hi, err)
			return
		}
		stat := BlockStat{Lo: lo, Hi: hi}
		if opt.Refine {
			ro := refine.Options{}
			if opt.RefineOpts != nil {
				ro = *opt.RefineOpts
			}
			ro.Ctx = ctx
			rs := bs.Start("refine")
			st, err := refine.Partition(sub, r.Partition, k, &ro)
			rs.End()
			if err != nil {
				errs[bi] = fmt.Errorf("stream: refining block [%d,%d): %w", lo, hi, err)
				return
			}
			stat.Refine = st
		}
		sup := r.Partition.Suppressor(sub)
		anon := sup.Apply(sub)
		stat.Cost = sup.Stars()
		blockCost.Observe(int64(stat.Cost))
		if opt.Checkpoint != nil {
			rendered := make([][]string, anon.Len())
			for i := range rendered {
				rendered[i] = anon.Strings(i)
			}
			if err := opt.Checkpoint.Save(stat, rendered); err != nil {
				errs[bi] = fmt.Errorf("stream: checkpointing block [%d,%d): %w", lo, hi, err)
				return
			}
		}
		results[bi] = blockResult{anon: anon, stat: stat}
	}
	if workers <= 1 {
		for bi := range bounds {
			process(bi)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				opt.Log.WorkerStart("stream", w)
				var workerBusy time.Duration
				for {
					bi := int(next.Add(1)) - 1
					if bi >= len(bounds) {
						opt.Log.WorkerDone("stream", w, workerBusy)
						return
					}
					if opt.Log.Enabled() {
						s := time.Now()
						process(bi)
						workerBusy += time.Since(s)
					} else {
						process(bi)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	// Deterministic error propagation: the lowest-index failing block
	// wins, matching what the sequential loop would have reported.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := relation.NewTable(t.Schema())
	res := &Result{BlockStats: make([]BlockStat, 0, len(bounds))}
	for _, br := range results {
		if br.resumed {
			// Replayed rows re-intern into the live schema; the release
			// compares at the string level, so this preserves the
			// byte-identity invariant.
			for _, r := range br.rows {
				if err := out.AppendStrings(r...); err != nil {
					return nil, fmt.Errorf("stream: %w", err)
				}
			}
			res.BlocksResumed++
		} else {
			for i := 0; i < br.anon.Len(); i++ {
				if err := out.AppendRow(br.anon.Row(i).Clone()); err != nil {
					return nil, fmt.Errorf("stream: %w", err)
				}
			}
		}
		res.Cost += br.stat.Cost
		res.Blocks++
		res.BlockStats = append(res.BlockStats, br.stat)
	}
	if !out.IsKAnonymous(k) && k > 1 {
		return nil, fmt.Errorf("stream: internal: output not %d-anonymous", k)
	}
	res.Anonymized = out
	return res, nil
}

// rowsMatchDegree reports whether every replayed row has the schema's
// arity — the cheap structural check that gates checkpoint reuse.
func rowsMatchDegree(rows [][]string, degree int) bool {
	for _, r := range rows {
		if len(r) != degree {
			return false
		}
	}
	return true
}

// blockBounds computes the [lo, hi) row ranges the table is cut into:
// blocks of the given size, with a short tail (< k rows) absorbed into
// the final block so every block can be k-anonymized.
func blockBounds(n, k, block int) [][2]int {
	var bounds [][2]int
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		// The final block must keep ≥ k rows; steal from the previous
		// boundary if the remainder is short.
		if n-hi > 0 && n-hi < k {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
		if hi == n {
			break
		}
	}
	return bounds
}
