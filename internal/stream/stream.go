// Package stream anonymizes tables too large for the quadratic
// machinery (or for memory) by processing rows in bounded blocks: each
// block is k-anonymized independently, and the concatenation of
// k-anonymous blocks is k-anonymous (every row's k-group lives inside
// its own block). Cost is monotone in block size — a bigger block can
// only offer the greedy more grouping options — which the tests verify
// on fixed corpora, making block size a pure memory/quality dial.
//
// This is a systems extension, not part of the paper; it is what makes
// the Theorem 4.2 algorithm deployable on inputs where even the O(n²)
// distance matrix is unaffordable.
package stream

import (
	"fmt"

	"kanon/internal/algo"
	"kanon/internal/refine"
	"kanon/internal/relation"
)

// Options configures the streaming pass.
type Options struct {
	// BlockRows is the maximum rows anonymized at once (default 1024,
	// minimum 2k).
	BlockRows int
	// Refine applies cost-direct local search inside each block.
	Refine bool
	// Algo runs per block; nil means algo.GreedyBall with defaults.
	Algo func(t *relation.Table, k int) (*algo.Result, error)
}

// Result aggregates the streamed anonymization.
type Result struct {
	// Anonymized holds the full output table (same schema and row order
	// as the input).
	Anonymized *relation.Table
	// Cost is the total stars inserted.
	Cost int
	// Blocks is how many blocks were processed.
	Blocks int
}

// Anonymize processes t in blocks and returns the concatenated
// k-anonymous release.
func Anonymize(t *relation.Table, k int, opt *Options) (*Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	if k < 1 {
		return nil, fmt.Errorf("stream: k = %d < 1", k)
	}
	n := t.Len()
	if n < k {
		return nil, fmt.Errorf("stream: table has %d rows, fewer than k = %d", n, k)
	}
	block := opt.BlockRows
	if block <= 0 {
		block = 1024
	}
	if block < 2*k {
		block = 2 * k
	}
	run := opt.Algo
	if run == nil {
		run = func(bt *relation.Table, bk int) (*algo.Result, error) {
			return algo.GreedyBall(bt, bk, nil)
		}
	}

	out := relation.NewTable(t.Schema())
	res := &Result{}
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		// The final block must keep ≥ k rows; steal from the previous
		// boundary if the remainder is short.
		if n-hi > 0 && n-hi < k {
			hi = n
		}
		indices := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			indices = append(indices, i)
		}
		sub := t.SubTable(indices)
		r, err := run(sub, k)
		if err != nil {
			return nil, fmt.Errorf("stream: block [%d,%d): %w", lo, hi, err)
		}
		if opt.Refine {
			if _, err := refine.Partition(sub, r.Partition, k, nil); err != nil {
				return nil, fmt.Errorf("stream: refining block [%d,%d): %w", lo, hi, err)
			}
		}
		sup := r.Partition.Suppressor(sub)
		anon := sup.Apply(sub)
		for i := 0; i < anon.Len(); i++ {
			if err := out.AppendRow(anon.Row(i).Clone()); err != nil {
				return nil, fmt.Errorf("stream: %w", err)
			}
		}
		res.Cost += sup.Stars()
		res.Blocks++
		if hi == n {
			break
		}
	}
	if !out.IsKAnonymous(k) && k > 1 {
		return nil, fmt.Errorf("stream: internal: output not %d-anonymous", k)
	}
	res.Anonymized = out
	return res, nil
}
