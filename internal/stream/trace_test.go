package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

func traceCorpus(n int) *relation.Table {
	return dataset.Planted(rand.New(rand.NewSource(11)), n, 6, 5, 3, 1)
}

// TestTraceDoesNotChangeRelease re-runs the same streamed instance
// with and without a span, across worker counts, and requires the
// byte-identical release the Options.Trace contract promises.
func TestTraceDoesNotChangeRelease(t *testing.T) {
	tab := traceCorpus(900)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base, err := Anonymize(tab, 3, &Options{BlockRows: 128, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			tr := obs.New()
			root := tr.Start("test")
			traced, err := Anonymize(tab, 3, &Options{BlockRows: 128, Workers: workers, Trace: root})
			root.End()
			if err != nil {
				t.Fatal(err)
			}
			if base.Cost != traced.Cost {
				t.Errorf("cost changed under tracing: %d vs %d", base.Cost, traced.Cost)
			}
			if base.Anonymized.String() != traced.Anonymized.String() {
				t.Error("release changed under tracing")
			}

			snap := tr.Snapshot()
			if got := snap.Counters["stream.blocks_done"]; got != int64(traced.Blocks) {
				t.Errorf("stream.blocks_done = %d, want %d", got, traced.Blocks)
			}
			q := snap.Gauges["stream.queue_depth"]
			if q.Last != 0 {
				t.Errorf("queue depth ended at %d, want 0", q.Last)
			}
			if q.Max != int64(traced.Blocks) {
				t.Errorf("queue depth max = %d, want %d", q.Max, traced.Blocks)
			}
			if snap.Counters["stream.worker_busy_ns"] <= 0 {
				t.Error("no worker busy time recorded")
			}
			if snap.Counters["stream.wall_ns"] <= 0 {
				t.Error("no pass wall time recorded")
			}
			if got := snap.Gauges["stream.workers"].Last; got != int64(workers) {
				t.Errorf("workers gauge = %d, want %d", got, workers)
			}
		})
	}
}

// TestTraceBlockSpans checks that every block shows up as its own span
// under "stream", even when opened concurrently.
func TestTraceBlockSpans(t *testing.T) {
	tab := traceCorpus(640)
	tr := obs.New()
	root := tr.Start("test")
	res, err := Anonymize(tab, 3, &Options{BlockRows: 64, Workers: 8, Trace: root})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	var streamSpan *obs.SpanSnapshot
	for i := range snap.Spans[0].Children {
		if snap.Spans[0].Children[i].Name == "stream" {
			streamSpan = &snap.Spans[0].Children[i]
		}
	}
	if streamSpan == nil {
		t.Fatal("no \"stream\" span recorded")
	}
	blocks := 0
	for _, c := range streamSpan.Children {
		if strings.HasPrefix(c.Name, "stream.block[") {
			blocks++
			if c.DurNS <= 0 {
				t.Errorf("block span %s has no duration", c.Name)
			}
		}
	}
	if blocks != res.Blocks {
		t.Errorf("recorded %d block spans, want %d", blocks, res.Blocks)
	}
}
