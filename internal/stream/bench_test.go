package stream

import (
	"math/rand"
	"runtime"
	"testing"

	"kanon/internal/dataset"
)

// BenchmarkStreamParallel compares the block pipeline at 1 worker vs
// all CPUs on a 4000-row corpus (the acceptance-criteria scale); the
// released tables are byte-identical, so the delta is pure wall-clock.
func BenchmarkStreamParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(20040614))
	tab := dataset.Census(rng, 4000, 8)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Anonymize(tab, 3, &Options{BlockRows: 500, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Anonymize(tab, 3, &Options{BlockRows: 500, Workers: runtime.NumCPU()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
