package stream

import (
	"math/rand"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/relation"
)

func TestBasicStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := dataset.Census(rng, 200, 6)
	res, err := Anonymize(tab, 3, &Options{BlockRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anonymized.Len() != 200 {
		t.Fatalf("output rows %d", res.Anonymized.Len())
	}
	if !res.Anonymized.IsKAnonymous(3) {
		t.Error("output not 3-anonymous")
	}
	if res.Blocks != 4 {
		t.Errorf("blocks = %d, want 4", res.Blocks)
	}
	if res.Cost != res.Anonymized.TotalStars() {
		t.Errorf("cost %d != stars %d", res.Cost, res.Anonymized.TotalStars())
	}
	// Non-starred cells preserved in order.
	for i := 0; i < tab.Len(); i++ {
		orig, anon := tab.Row(i), res.Anonymized.Row(i)
		for j := range orig {
			if anon[j] != relation.Star && anon[j] != orig[j] {
				t.Fatalf("cell (%d,%d) rewritten", i, j)
			}
		}
	}
}

func TestShortTailAbsorbed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 52 rows with block 25 and k=3: blocks [0,25), [25,52) — the tail
	// of 2 < k rows is merged into the second block rather than left
	// unanonymizable.
	tab := dataset.Uniform(rng, 52, 4, 3)
	res, err := Anonymize(tab, 3, &Options{BlockRows: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 2 {
		t.Errorf("blocks = %d, want 2", res.Blocks)
	}
	if !res.Anonymized.IsKAnonymous(3) {
		t.Error("output not 3-anonymous")
	}
}

func TestSingleBlockMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := dataset.Zipf(rng, 40, 5, 6, 1.5)
	direct, err := algo.GreedyBall(tab, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Anonymize(tab, 2, &Options{BlockRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", streamed.Blocks)
	}
	if streamed.Cost != direct.Cost {
		t.Errorf("single-block cost %d != direct %d", streamed.Cost, direct.Cost)
	}
}

// TestCostMonotoneInBlockSize: larger blocks give the greedy strictly
// more options, so aggregate cost must not increase on a fixed corpus.
func TestCostMonotoneInBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := dataset.Census(rng, 300, 6)
	prev := -1
	for _, block := range []int{20, 60, 150, 300} {
		res, err := Anonymize(tab, 3, &Options{BlockRows: block, Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Cost > prev+prev/10 {
			// Allow a small tolerance: greedy is not strictly monotone
			// in its candidate pool, though it should be close.
			t.Errorf("block %d cost %d well above smaller-block cost %d", block, res.Cost, prev)
		}
		prev = res.Cost
	}
}

func TestRefineOptionHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := dataset.Census(rng, 120, 6)
	plain, err := Anonymize(tab, 3, &Options{BlockRows: 40})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Anonymize(tab, 3, &Options{BlockRows: 40, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cost > plain.Cost {
		t.Errorf("refined %d > plain %d", refined.Cost, plain.Cost)
	}
}

func TestCustomAlgo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := dataset.Uniform(rng, 30, 4, 2)
	calls := 0
	res, err := Anonymize(tab, 2, &Options{
		BlockRows: 10,
		Algo: func(bt *relation.Table, k int) (*algo.Result, error) {
			calls++
			return algo.GreedyBall(bt, k, &algo.Options{SplitSorted: true})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Blocks || calls != 3 {
		t.Errorf("custom algo called %d times, blocks %d", calls, res.Blocks)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := dataset.Uniform(rng, 5, 3, 2)
	if _, err := Anonymize(tab, 0, nil); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Anonymize(tab, 9, nil); err == nil {
		t.Error("accepted n < k")
	}
	// Tiny block sizes are clamped to 2k, not rejected.
	res, err := Anonymize(tab, 2, &Options{BlockRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anonymized.IsKAnonymous(2) {
		t.Error("clamped block output invalid")
	}
}

func TestLargeInputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	rng := rand.New(rand.NewSource(8))
	tab := dataset.Census(rng, 20000, 8)
	res, err := Anonymize(tab, 5, &Options{BlockRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 20 {
		t.Errorf("blocks = %d", res.Blocks)
	}
	if !res.Anonymized.IsKAnonymous(5) {
		t.Error("20k-row output not 5-anonymous")
	}
}
