package stream

import (
	"errors"
	"math/rand"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/relation"
)

func TestBasicStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := dataset.Census(rng, 200, 6)
	res, err := Anonymize(tab, 3, &Options{BlockRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anonymized.Len() != 200 {
		t.Fatalf("output rows %d", res.Anonymized.Len())
	}
	if !res.Anonymized.IsKAnonymous(3) {
		t.Error("output not 3-anonymous")
	}
	if res.Blocks != 4 {
		t.Errorf("blocks = %d, want 4", res.Blocks)
	}
	if res.Cost != res.Anonymized.TotalStars() {
		t.Errorf("cost %d != stars %d", res.Cost, res.Anonymized.TotalStars())
	}
	// Non-starred cells preserved in order.
	for i := 0; i < tab.Len(); i++ {
		orig, anon := tab.Row(i), res.Anonymized.Row(i)
		for j := range orig {
			if anon[j] != relation.Star && anon[j] != orig[j] {
				t.Fatalf("cell (%d,%d) rewritten", i, j)
			}
		}
	}
}

func TestShortTailAbsorbed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 52 rows with block 25 and k=3: blocks [0,25), [25,52) — the tail
	// of 2 < k rows is merged into the second block rather than left
	// unanonymizable.
	tab := dataset.Uniform(rng, 52, 4, 3)
	res, err := Anonymize(tab, 3, &Options{BlockRows: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 2 {
		t.Errorf("blocks = %d, want 2", res.Blocks)
	}
	if !res.Anonymized.IsKAnonymous(3) {
		t.Error("output not 3-anonymous")
	}
}

func TestSingleBlockMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := dataset.Zipf(rng, 40, 5, 6, 1.5)
	direct, err := algo.GreedyBall(tab, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Anonymize(tab, 2, &Options{BlockRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", streamed.Blocks)
	}
	if streamed.Cost != direct.Cost {
		t.Errorf("single-block cost %d != direct %d", streamed.Cost, direct.Cost)
	}
}

// TestCostMonotoneInBlockSize: larger blocks give the greedy strictly
// more options, so aggregate cost must not increase on a fixed corpus.
func TestCostMonotoneInBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := dataset.Census(rng, 300, 6)
	prev := -1
	for _, block := range []int{20, 60, 150, 300} {
		res, err := Anonymize(tab, 3, &Options{BlockRows: block, Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Cost > prev+prev/10 {
			// Allow a small tolerance: greedy is not strictly monotone
			// in its candidate pool, though it should be close.
			t.Errorf("block %d cost %d well above smaller-block cost %d", block, res.Cost, prev)
		}
		prev = res.Cost
	}
}

func TestRefineOptionHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := dataset.Census(rng, 120, 6)
	plain, err := Anonymize(tab, 3, &Options{BlockRows: 40})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Anonymize(tab, 3, &Options{BlockRows: 40, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cost > plain.Cost {
		t.Errorf("refined %d > plain %d", refined.Cost, plain.Cost)
	}
}

func TestCustomAlgo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := dataset.Uniform(rng, 30, 4, 2)
	calls := 0
	res, err := Anonymize(tab, 2, &Options{
		BlockRows: 10,
		// Workers: 1 so the unsynchronized call counter is safe.
		Workers: 1,
		Algo: func(bt *relation.Table, k int) (*algo.Result, error) {
			calls++
			return algo.GreedyBall(bt, k, &algo.Options{SplitSorted: true})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Blocks || calls != 3 {
		t.Errorf("custom algo called %d times, blocks %d", calls, res.Blocks)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := dataset.Uniform(rng, 5, 3, 2)
	if _, err := Anonymize(tab, 0, nil); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Anonymize(tab, 9, nil); err == nil {
		t.Error("accepted n < k")
	}
	// Tiny block sizes are clamped to 2k, not rejected.
	res, err := Anonymize(tab, 2, &Options{BlockRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anonymized.IsKAnonymous(2) {
		t.Error("clamped block output invalid")
	}
}

func TestLargeInputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	rng := rand.New(rand.NewSource(8))
	tab := dataset.Census(rng, 20000, 8)
	res, err := Anonymize(tab, 5, &Options{BlockRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 20 {
		t.Errorf("blocks = %d", res.Blocks)
	}
	if !res.Anonymized.IsKAnonymous(5) {
		t.Error("20k-row output not 5-anonymous")
	}
}

// TestParallelMatchesSequential is the determinism property test: the
// concurrent block pipeline must release a byte-identical table (and
// identical stats) to the Workers: 1 path across seeds, block sizes,
// and k.
func TestParallelMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 9, 77} {
		for _, block := range []int{30, 64, 100} {
			for _, k := range []int{2, 3} {
				rng := rand.New(rand.NewSource(seed))
				tab := dataset.Census(rng, 250, 6)
				seq, err := Anonymize(tab, k, &Options{BlockRows: block, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 2, 5} {
					par, err := Anonymize(tab, k, &Options{BlockRows: block, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if par.Cost != seq.Cost || par.Blocks != seq.Blocks {
						t.Fatalf("seed=%d block=%d k=%d workers=%d: cost/blocks %d/%d, want %d/%d",
							seed, block, k, workers, par.Cost, par.Blocks, seq.Cost, seq.Blocks)
					}
					for i := 0; i < seq.Anonymized.Len(); i++ {
						a, b := seq.Anonymized.Strings(i), par.Anonymized.Strings(i)
						for j := range a {
							if a[j] != b[j] {
								t.Fatalf("seed=%d block=%d k=%d workers=%d: cell (%d,%d) %q != %q",
									seed, block, k, workers, i, j, b[j], a[j])
							}
						}
					}
					if len(par.BlockStats) != len(seq.BlockStats) {
						t.Fatalf("block stats length %d != %d", len(par.BlockStats), len(seq.BlockStats))
					}
					for bi := range seq.BlockStats {
						if par.BlockStats[bi] != seq.BlockStats[bi] {
							t.Fatalf("block %d stats differ: %+v vs %+v", bi, par.BlockStats[bi], seq.BlockStats[bi])
						}
					}
				}
			}
		}
	}
}

// TestBlockStats verifies the per-block observability contract: ranges
// tile the input, per-block costs sum to the total, and refine stats
// appear exactly when requested and never increase cost.
func TestBlockStats(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := dataset.Census(rng, 200, 6)
	res, err := Anonymize(tab, 3, &Options{BlockRows: 50, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlockStats) != res.Blocks {
		t.Fatalf("BlockStats has %d entries for %d blocks", len(res.BlockStats), res.Blocks)
	}
	wantLo, costSum := 0, 0
	for bi, bs := range res.BlockStats {
		if bs.Lo != wantLo {
			t.Fatalf("block %d starts at %d, want %d", bi, bs.Lo, wantLo)
		}
		if bs.Hi <= bs.Lo {
			t.Fatalf("block %d empty range [%d,%d)", bi, bs.Lo, bs.Hi)
		}
		wantLo = bs.Hi
		costSum += bs.Cost
		if bs.Refine == nil {
			t.Fatalf("block %d missing refine stats with Refine: true", bi)
		}
		if bs.Refine.CostAfter > bs.Refine.CostBefore {
			t.Fatalf("block %d refine increased cost %d → %d", bi, bs.Refine.CostBefore, bs.Refine.CostAfter)
		}
	}
	if wantLo != tab.Len() {
		t.Fatalf("blocks cover [0,%d), want [0,%d)", wantLo, tab.Len())
	}
	if costSum != res.Cost {
		t.Fatalf("per-block costs sum to %d, total is %d", costSum, res.Cost)
	}
	plain, err := Anonymize(tab, 3, &Options{BlockRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	for bi, bs := range plain.BlockStats {
		if bs.Refine != nil {
			t.Fatalf("block %d has refine stats without Refine: true", bi)
		}
	}
}

// TestErrorPropagationDeterministic checks that when several blocks
// fail, every worker count reports the same (lowest-index) block's
// error — matching what the sequential loop would have said.
func TestErrorPropagationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tab := dataset.Uniform(rng, 120, 4, 3)
	failing := func(bt *relation.Table, k int) (*algo.Result, error) {
		if bt.Len() < 100 { // every block of 30 fails; a whole-table run would not
			return nil, errors.New("boom")
		}
		return algo.GreedyBall(bt, k, nil)
	}
	var want string
	for _, workers := range []int{1, 0, 2, 4} {
		_, err := Anonymize(tab, 2, &Options{BlockRows: 30, Workers: workers, Algo: failing})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err.Error(), want)
		}
	}
	if want != `stream: block [0,30): boom` {
		t.Fatalf("unexpected first-block error %q", want)
	}
}
