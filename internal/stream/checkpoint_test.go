package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/refine"
	"kanon/internal/relation"
)

// memCheckpoint is an in-memory stream.Checkpoint for tests: a map of
// committed blocks plus counters for the interface traffic.
type memCheckpoint struct {
	mu     sync.Mutex
	blocks map[[2]int]memBlock
	saves  int
	loads  int
}

type memBlock struct {
	stat BlockStat
	rows [][]string
}

func newMemCheckpoint() *memCheckpoint {
	return &memCheckpoint{blocks: make(map[[2]int]memBlock)}
}

func (c *memCheckpoint) Load(lo, hi int) ([][]string, *BlockStat, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loads++
	b, ok := c.blocks[[2]int{lo, hi}]
	if !ok {
		return nil, nil, false, nil
	}
	st := b.stat
	return b.rows, &st, true, nil
}

func (c *memCheckpoint) Save(stat BlockStat, rows [][]string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.saves++
	c.blocks[[2]int{stat.Lo, stat.Hi}] = memBlock{stat: stat, rows: rows}
	return nil
}

// sameRelease asserts two results are byte-identical releases.
func sameRelease(t *testing.T, want, got *Result) {
	t.Helper()
	if got.Cost != want.Cost || got.Blocks != want.Blocks {
		t.Fatalf("cost/blocks %d/%d, want %d/%d", got.Cost, got.Blocks, want.Cost, want.Blocks)
	}
	if want.Anonymized.Len() != got.Anonymized.Len() {
		t.Fatalf("rows %d, want %d", got.Anonymized.Len(), want.Anonymized.Len())
	}
	for i := 0; i < want.Anonymized.Len(); i++ {
		a, b := want.Anonymized.Strings(i), got.Anonymized.Strings(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("cell (%d,%d): %q, want %q", i, j, b[j], a[j])
			}
		}
	}
	if len(want.BlockStats) != len(got.BlockStats) {
		t.Fatalf("stats len %d, want %d", len(got.BlockStats), len(want.BlockStats))
	}
	for bi := range want.BlockStats {
		if want.BlockStats[bi].Lo != got.BlockStats[bi].Lo ||
			want.BlockStats[bi].Hi != got.BlockStats[bi].Hi ||
			want.BlockStats[bi].Cost != got.BlockStats[bi].Cost {
			t.Fatalf("block %d stats %+v, want %+v", bi, got.BlockStats[bi], want.BlockStats[bi])
		}
	}
}

// TestCheckpointFullResume: a completed pass leaves the sink holding
// every block; a re-run must replay all of them — zero algorithm calls —
// and release byte-identical output.
func TestCheckpointFullResume(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := dataset.Census(rng, 200, 6)
	ck := newMemCheckpoint()
	opts := func(calls *int) *Options {
		return &Options{BlockRows: 50, Workers: 1, Checkpoint: ck,
			Algo: func(bt *relation.Table, k int) (*algo.Result, error) {
				*calls++
				return algo.GreedyBall(bt, k, nil)
			}}
	}
	var firstCalls int
	first, err := Anonymize(tab, 3, opts(&firstCalls))
	if err != nil {
		t.Fatal(err)
	}
	if firstCalls != first.Blocks || first.BlocksResumed != 0 {
		t.Fatalf("first pass: calls=%d resumed=%d blocks=%d", firstCalls, first.BlocksResumed, first.Blocks)
	}
	if ck.saves != first.Blocks {
		t.Fatalf("sink holds %d saves for %d blocks", ck.saves, first.Blocks)
	}

	var resumeCalls int
	resumed, err := Anonymize(tab, 3, opts(&resumeCalls))
	if err != nil {
		t.Fatal(err)
	}
	if resumeCalls != 0 {
		t.Fatalf("full resume recomputed %d blocks", resumeCalls)
	}
	if resumed.BlocksResumed != first.Blocks {
		t.Fatalf("BlocksResumed = %d, want %d", resumed.BlocksResumed, first.Blocks)
	}
	sameRelease(t, first, resumed)
}

// TestCheckpointPartialResume simulates a crash after some blocks
// committed: only the missing ones are recomputed, and the release is
// byte-identical to an uninterrupted run, for every worker count.
func TestCheckpointPartialResume(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tab := dataset.Census(rng, 250, 6)
	clean, err := Anonymize(tab, 3, &Options{BlockRows: 50, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		full := newMemCheckpoint()
		if _, err := Anonymize(tab, 3, &Options{BlockRows: 50, Workers: 1, Checkpoint: full}); err != nil {
			t.Fatal(err)
		}
		// Keep only blocks 0 and 2 — the "crash" lost the rest.
		partial := newMemCheckpoint()
		kept := 0
		for key, b := range full.blocks {
			if key[0] == 0 || key[0] == 100 {
				partial.blocks[key] = b
				kept++
			}
		}
		if kept != 2 {
			t.Fatalf("kept %d blocks, want 2", kept)
		}
		var calls int
		res, err := Anonymize(tab, 3, &Options{BlockRows: 50, Workers: workers, Checkpoint: partial,
			Algo: func(bt *relation.Table, k int) (*algo.Result, error) {
				calls++
				return algo.GreedyBall(bt, k, nil)
			}})
		if err != nil {
			t.Fatal(err)
		}
		if res.BlocksResumed != 2 {
			t.Fatalf("workers=%d: BlocksResumed = %d, want 2", workers, res.BlocksResumed)
		}
		if workers == 1 && calls != res.Blocks-2 {
			t.Fatalf("recomputed %d blocks, want %d", calls, res.Blocks-2)
		}
		sameRelease(t, clean, res)
	}
}

// TestCheckpointInvalidRecomputed: records whose shape disagrees with
// the block they claim to be — wrong range, wrong row count, wrong
// arity — are dropped and the block recomputed, never trusted.
func TestCheckpointInvalidRecomputed(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tab := dataset.Census(rng, 100, 6)
	clean, err := Anonymize(tab, 2, &Options{BlockRows: 50, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(*memCheckpoint)) {
		ck := newMemCheckpoint()
		if _, err := Anonymize(tab, 2, &Options{BlockRows: 50, Workers: 1, Checkpoint: ck}); err != nil {
			t.Fatal(err)
		}
		mutate(ck)
		res, err := Anonymize(tab, 2, &Options{BlockRows: 50, Workers: 1, Checkpoint: ck})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.BlocksResumed != 1 {
			t.Fatalf("%s: BlocksResumed = %d, want 1 (damaged block recomputed)", name, res.BlocksResumed)
		}
		sameRelease(t, clean, res)
	}
	corrupt("stat range", func(ck *memCheckpoint) {
		b := ck.blocks[[2]int{0, 50}]
		b.stat.Lo, b.stat.Hi = 7, 57
		ck.blocks[[2]int{0, 50}] = b
	})
	corrupt("row count", func(ck *memCheckpoint) {
		b := ck.blocks[[2]int{0, 50}]
		b.rows = b.rows[:10]
		ck.blocks[[2]int{0, 50}] = b
	})
	corrupt("arity", func(ck *memCheckpoint) {
		b := ck.blocks[[2]int{0, 50}]
		b.rows[3] = []string{"just-one"}
		ck.blocks[[2]int{0, 50}] = b
	})
}

// TestCheckpointSaveErrorAborts: a sink that cannot keep its durability
// promise fails the pass loudly.
func TestCheckpointSaveErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tab := dataset.Uniform(rng, 60, 4, 3)
	_, err := Anonymize(tab, 2, &Options{BlockRows: 30, Workers: 1, Checkpoint: failingSink{}})
	if err == nil {
		t.Fatal("pass succeeded with a failing checkpoint sink")
	}
}

type failingSink struct{}

func (failingSink) Load(lo, hi int) ([][]string, *BlockStat, bool, error) {
	return nil, nil, false, nil
}
func (failingSink) Save(stat BlockStat, rows [][]string) error {
	return fmt.Errorf("disk full")
}

// TestRefineOptsPassthrough: stream.Options.RefineOpts reaches the
// per-block local search — MaxRounds bounds the rounds, NoDissolve
// zeroes the dissolve count — and nil keeps the historical defaults.
func TestRefineOptsPassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tab := dataset.Census(rng, 160, 6)
	res, err := Anonymize(tab, 3, &Options{BlockRows: 40, Workers: 1, Refine: true,
		RefineOpts: &refine.Options{MaxRounds: 1, NoDissolve: true}})
	if err != nil {
		t.Fatal(err)
	}
	for bi, bs := range res.BlockStats {
		if bs.Refine == nil {
			t.Fatalf("block %d missing refine stats", bi)
		}
		if bs.Refine.Rounds > 1 {
			t.Errorf("block %d ran %d rounds with MaxRounds: 1", bi, bs.Refine.Rounds)
		}
		if bs.Refine.Dissolves != 0 {
			t.Errorf("block %d dissolved %d groups with NoDissolve", bi, bs.Refine.Dissolves)
		}
	}
	// The bounded search must still be a valid (never-worse) refinement.
	if !res.Anonymized.IsKAnonymous(3) {
		t.Error("output not 3-anonymous")
	}
}
