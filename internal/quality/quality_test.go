package quality

import (
	"math/rand"
	"strings"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/dataset"
	"kanon/internal/relation"
)

func TestMeasureKnownTable(t *testing.T) {
	tab := relation.NewTable(relation.NewSchema("a", "b"))
	for _, r := range [][]string{
		{"*", "x"}, {"*", "x"}, // group of 2, 2 stars in column 0
		{"y", "*"}, {"y", "*"}, {"y", "*"}, // group of 3, 3 stars in column 1
	} {
		if err := tab.AppendStrings(r...); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Measure(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows != 5 || r.Columns != 2 || r.Stars != 5 {
		t.Errorf("basic counts wrong: %+v", r)
	}
	if r.StarsPerColumn[0] != 2 || r.StarsPerColumn[1] != 3 {
		t.Errorf("per-column stars = %v", r.StarsPerColumn)
	}
	if r.SuppressionRate != 0.5 {
		t.Errorf("rate = %v, want 0.5", r.SuppressionRate)
	}
	if r.Groups != 2 || r.MinGroup != 2 {
		t.Errorf("groups = %d, min = %d", r.Groups, r.MinGroup)
	}
	if r.Discernibility != 4+9 {
		t.Errorf("DM = %d, want 13", r.Discernibility)
	}
	if want := (5.0 / 2.0) / 2.0; r.CAvg != want {
		t.Errorf("CAvg = %v, want %v", r.CAvg, want)
	}
	if r.GroupSizes[0] != 2 || r.GroupSizes[1] != 3 {
		t.Errorf("sizes = %v", r.GroupSizes)
	}
	s := r.String()
	for _, want := range []string{"rows=5", "DM=13", "min-group=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestMeasureEmpty(t *testing.T) {
	tab := relation.NewTable(relation.NewSchema("a"))
	if _, err := Measure(tab, 2); err == nil {
		t.Error("accepted empty table")
	}
}

func TestMeasureOnAlgorithmOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := dataset.Census(rng, 60, 6)
	res, err := algo.GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(res.Anonymized, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stars != res.Cost {
		t.Errorf("stars %d != algorithm cost %d", r.Stars, res.Cost)
	}
	if r.MinGroup < 3 {
		t.Errorf("min group %d < k", r.MinGroup)
	}
	// C_avg ≥ 1 always (no class can be smaller than k); it may exceed
	// (2k−1)/k because distinct partition groups whose anonymized rows
	// coincide merge into one textual equivalence class.
	if r.CAvg < 1 {
		t.Errorf("CAvg = %v < 1", r.CAvg)
	}
	// DM bounds: n·k ≤ DM ≤ n·maxGroup.
	if r.Discernibility < r.Rows*3 {
		t.Errorf("DM = %d below n·k", r.Discernibility)
	}
}

func TestRiskMetrics(t *testing.T) {
	tab := relation.NewTable(relation.NewSchema("a"))
	for _, v := range []string{"x", "x", "y", "y", "y", "y"} {
		if err := tab.AppendStrings(v); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Measure(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProsecutorRisk != 0.5 { // worst class has 2 members
		t.Errorf("ProsecutorRisk = %v, want 0.5", r.ProsecutorRisk)
	}
	if want := 2.0 / 6.0; r.AvgRisk != want {
		t.Errorf("AvgRisk = %v, want %v", r.AvgRisk, want)
	}
	if !strings.Contains(r.String(), "risk=0.500") {
		t.Errorf("String() missing risk: %s", r.String())
	}
}
