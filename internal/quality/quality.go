// Package quality computes standard utility metrics of a k-anonymized
// release. The paper's objective is the raw count of suppressed entries;
// deployments usually look at a small dashboard of derived measures
// when comparing releases, and the E8 baseline study reports them:
//
//   - suppression rate, overall and per column (which attributes the
//     release sacrificed);
//   - the discernibility metric DM = Σ_groups |g|² (Bayardo & Agrawal):
//     each row is charged the size of its equivalence class;
//   - the normalized average group size C_avg = (n / #groups) / k
//     (LeFevre et al.): 1.0 means groups are as small as k-anonymity
//     permits — no unnecessary blurring.
package quality

import (
	"fmt"

	"kanon/internal/core"
	"kanon/internal/relation"
)

// Report holds the utility metrics of one anonymized table.
type Report struct {
	Rows    int
	Columns int
	K       int

	// Stars is the total suppressed entries; StarsPerColumn breaks it
	// down by column index.
	Stars          int
	StarsPerColumn []int
	// SuppressionRate is Stars / (Rows·Columns).
	SuppressionRate float64

	// Groups is the number of equivalence classes; GroupSizes the sorted
	// multiset of their sizes (ascending).
	Groups     int
	GroupSizes []int
	// MinGroup is the smallest class — the release is MinGroup-anonymous.
	MinGroup int

	// Discernibility is Σ |g|².
	Discernibility int
	// CAvg is (Rows/Groups)/K; 0 if K = 0.
	CAvg float64

	// ProsecutorRisk is the worst-case re-identification probability
	// for an attacker who knows their target is in the release:
	// 1 / MinGroup.
	ProsecutorRisk float64
	// AvgRisk is the expected re-identification probability for a
	// uniformly chosen row: (1/n) Σ_rows 1/|class(row)| = Groups / Rows.
	AvgRisk float64
}

// Measure computes the Report for an anonymized table against the
// anonymity parameter k it was produced for.
func Measure(t *relation.Table, k int) (*Report, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("quality: empty table")
	}
	r := &Report{
		Rows:           t.Len(),
		Columns:        t.Degree(),
		K:              k,
		StarsPerColumn: make([]int, t.Degree()),
	}
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		for j, c := range row {
			if c == relation.Star {
				r.Stars++
				r.StarsPerColumn[j]++
			}
		}
	}
	r.SuppressionRate = float64(r.Stars) / float64(r.Rows*r.Columns)

	p := core.FromAnonymized(t)
	r.Groups = len(p.Groups)
	r.MinGroup = t.Len()
	for _, g := range p.Groups {
		r.GroupSizes = append(r.GroupSizes, len(g))
		r.Discernibility += len(g) * len(g)
		if len(g) < r.MinGroup {
			r.MinGroup = len(g)
		}
	}
	sortInts(r.GroupSizes)
	if k > 0 {
		r.CAvg = float64(r.Rows) / float64(r.Groups) / float64(k)
	}
	r.ProsecutorRisk = 1 / float64(r.MinGroup)
	r.AvgRisk = float64(r.Groups) / float64(r.Rows)
	return r, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// String renders the report as a short human-readable block.
func (r *Report) String() string {
	return fmt.Sprintf(
		"rows=%d cols=%d k=%d stars=%d (%.1f%%) groups=%d min-group=%d DM=%d C_avg=%.2f risk=%.3f/%.3f",
		r.Rows, r.Columns, r.K, r.Stars, 100*r.SuppressionRate,
		r.Groups, r.MinGroup, r.Discernibility, r.CAvg, r.ProsecutorRisk, r.AvgRisk)
}
