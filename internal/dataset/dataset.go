// Package dataset generates the synthetic workloads the experiments run
// on. The paper's motivating setting is categorical microdata (hospital
// records, census-style tables); real census extracts are not available
// offline, so this package produces census-like categorical data with
// skewed (Zipf) marginals, plus the abstract vector workloads — uniform,
// planted-cluster, adversarial — used to measure approximation quality.
//
// Every generator takes an explicit *rand.Rand so corpora are
// reproducible from a seed; nothing here reads global randomness.
package dataset

import (
	"fmt"
	"math/rand"

	"kanon/internal/relation"
)

// Uniform returns an n×m table with entries drawn uniformly from an
// alphabet of the given size.
func Uniform(rng *rand.Rand, n, m, alphabet int) *relation.Table {
	if alphabet < 1 {
		alphabet = 1
	}
	vecs := make([][]int, n)
	for i := range vecs {
		v := make([]int, m)
		for j := range v {
			v[j] = rng.Intn(alphabet)
		}
		vecs[i] = v
	}
	return relation.MustFromVectors(vecs)
}

// Planted returns an n×m table consisting of ⌈n/k⌉ cluster centers over
// the alphabet, each replicated to fill k (or more) rows, with each
// replica having up to noise coordinates resampled. With noise = 0 the
// instance is perfectly k-anonymous already (OPT = 0); small noise
// yields instances whose optimal groups are the planted clusters. Rows
// are shuffled so cluster membership is hidden from positional
// heuristics.
func Planted(rng *rand.Rand, n, m, alphabet, k, noise int) *relation.Table {
	if alphabet < 2 {
		alphabet = 2
	}
	vecs := make([][]int, 0, n)
	for len(vecs) < n {
		center := make([]int, m)
		for j := range center {
			center[j] = rng.Intn(alphabet)
		}
		sz := k
		if rem := n - len(vecs); rem < 2*k {
			sz = rem // last cluster absorbs the remainder
		}
		for r := 0; r < sz; r++ {
			row := append([]int(nil), center...)
			flips := 0
			if noise > 0 {
				flips = rng.Intn(noise + 1)
			}
			for f := 0; f < flips; f++ {
				j := rng.Intn(m)
				row[j] = rng.Intn(alphabet)
			}
			vecs = append(vecs, row)
		}
	}
	rng.Shuffle(len(vecs), func(a, b int) { vecs[a], vecs[b] = vecs[b], vecs[a] })
	return relation.MustFromVectors(vecs)
}

// Zipf returns an n×m table where column j draws from an alphabet of
// the given size with Zipf-skewed frequencies (exponent s > 1). Skewed
// categorical marginals are the norm in microdata quasi-identifiers.
func Zipf(rng *rand.Rand, n, m, alphabet int, s float64) *relation.Table {
	if alphabet < 1 {
		alphabet = 1
	}
	if s <= 1 {
		s = 1.1
	}
	z := rand.NewZipf(rng, s, 1, uint64(alphabet-1))
	vecs := make([][]int, n)
	for i := range vecs {
		v := make([]int, m)
		for j := range v {
			v[j] = int(z.Uint64())
		}
		vecs[i] = v
	}
	return relation.MustFromVectors(vecs)
}

// censusAttribute describes one synthetic microdata column.
type censusAttribute struct {
	name   string
	values []string
	skew   float64 // Zipf exponent; 0 means uniform
}

// censusSchema mirrors the quasi-identifier mix of public microdata
// releases (cf. the Adult census extract): a few high-cardinality
// columns (zip, birth year) and several low-cardinality demographic
// ones.
var censusSchema = []censusAttribute{
	{"age", ageBands(), 1.3},
	{"zip", zipPrefixes(), 1.5},
	{"sex", []string{"F", "M"}, 0},
	{"race", []string{"White", "Black", "Asian", "AmInd", "Other"}, 1.7},
	{"education", []string{"HS", "SomeCollege", "Bachelors", "Masters", "Doctorate", "Grade<9", "Prof"}, 1.4},
	{"marital", []string{"Married", "Never", "Divorced", "Widowed", "Separated"}, 1.3},
	{"occupation", []string{"Tech", "Sales", "Admin", "Exec", "Service", "Craft", "Transport", "Farming", "Military", "Clerical"}, 1.5},
	{"country", []string{"US", "MX", "PH", "DE", "CA", "IN", "CN", "Other"}, 2.2},
}

func ageBands() []string {
	out := make([]string, 0, 16)
	for lo := 15; lo < 95; lo += 5 {
		out = append(out, fmt.Sprintf("%d-%d", lo, lo+4))
	}
	return out
}

func zipPrefixes() []string {
	out := make([]string, 0, 40)
	for p := 100; p < 140; p++ {
		out = append(out, fmt.Sprintf("%d**", p))
	}
	return out
}

// Census returns n rows of census-like categorical microdata with at
// most m of the schema's columns (m ≤ 8; larger m repeats columns with
// fresh draws under suffixed names, so any degree is available).
func Census(rng *rand.Rand, n, m int) *relation.Table {
	attrs := make([]censusAttribute, 0, m)
	for j := 0; j < m; j++ {
		base := censusSchema[j%len(censusSchema)]
		if j >= len(censusSchema) {
			base.name = fmt.Sprintf("%s%d", base.name, j/len(censusSchema)+1)
		}
		attrs = append(attrs, base)
	}
	names := make([]string, len(attrs))
	for j, a := range attrs {
		names[j] = a.name
	}
	t := relation.NewTable(relation.NewSchema(names...))
	samplers := make([]func() string, len(attrs))
	for j, a := range attrs {
		vals := a.values
		if a.skew > 0 && len(vals) > 1 {
			z := rand.NewZipf(rng, a.skew, 1, uint64(len(vals)-1))
			samplers[j] = func() string { return vals[z.Uint64()] }
		} else {
			samplers[j] = func() string { return vals[rng.Intn(len(vals))] }
		}
	}
	row := make([]string, len(attrs))
	for i := 0; i < n; i++ {
		for j := range attrs {
			row[j] = samplers[j]()
		}
		if err := t.AppendStrings(row...); err != nil {
			panic(err) // arity is correct by construction
		}
	}
	return t
}

// Sunflower returns the adversarial family from the bounds analysis in
// internal/core: one all-zero center row plus petals−many rows, each
// equal to the center except for a private block of width w set to 1.
// Its single-group Anon cost is (petals+1)·(core + petals·w) while the
// diameter stays 2w + core-ish, exercising the gap between the printed
// and safe Lemma 4.1 constants. Degree is petals·w.
func Sunflower(petals, w int) *relation.Table {
	m := petals * w
	vecs := make([][]int, 0, petals+1)
	vecs = append(vecs, make([]int, m))
	for p := 0; p < petals; p++ {
		v := make([]int, m)
		for x := 0; x < w; x++ {
			v[p*w+x] = 1
		}
		vecs = append(vecs, v)
	}
	return relation.MustFromVectors(vecs)
}
