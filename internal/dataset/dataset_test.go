package dataset

import (
	"math/rand"
	"testing"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

func TestUniformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := Uniform(rng, 50, 7, 4)
	if tab.Len() != 50 || tab.Degree() != 7 {
		t.Fatalf("shape %dx%d, want 50x7", tab.Len(), tab.Degree())
	}
	for j := 0; j < tab.Degree(); j++ {
		if sz := tab.Schema().Attribute(j).AlphabetSize(); sz > 4 {
			t.Errorf("column %d alphabet %d > 4", j, sz)
		}
	}
}

func TestUniformAlphabetFloor(t *testing.T) {
	tab := Uniform(rand.New(rand.NewSource(2)), 5, 3, 0)
	for j := 0; j < 3; j++ {
		if sz := tab.Schema().Attribute(j).AlphabetSize(); sz != 1 {
			t.Errorf("column %d alphabet %d, want 1", j, sz)
		}
	}
}

func TestPlantedZeroNoiseIsKAnonymous(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(k)))
		tab := Planted(rng, 30, 6, 4, k, 0)
		if tab.Len() != 30 {
			t.Fatalf("Len = %d", tab.Len())
		}
		if !tab.IsKAnonymous(k) {
			t.Errorf("k=%d: zero-noise planted instance not k-anonymous", k)
		}
	}
}

func TestPlantedRemainderAbsorbed(t *testing.T) {
	// n = 10, k = 3: the last cluster must absorb the remainder so no
	// cluster has fewer than k rows.
	rng := rand.New(rand.NewSource(7))
	tab := Planted(rng, 10, 4, 3, 3, 0)
	if tab.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tab.Len())
	}
	if !tab.IsKAnonymous(3) {
		t.Error("remainder handling broke k-anonymity of zero-noise instance")
	}
}

func TestPlantedNoiseBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	noise := 2
	tab := Planted(rng, 40, 8, 3, 4, noise)
	// Every row must be within `noise` of some other row's cluster...
	// weaker but checkable: with noise ≤ 2 on degree 8, each row has a
	// row within distance 2·noise (its cluster sibling).
	mat := metric.NewMatrix(tab)
	for i := 0; i < tab.Len(); i++ {
		best := tab.Degree() + 1
		for j := 0; j < tab.Len(); j++ {
			if i != j && mat.Dist(i, j) < best {
				best = mat.Dist(i, j)
			}
		}
		if best > 2*noise {
			t.Errorf("row %d has nearest neighbor at distance %d > %d", i, best, 2*noise)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := Zipf(rng, 2000, 1, 20, 2.0)
	// Count frequency of the most common symbol in column 0; Zipf(2.0)
	// should put well over a third of the mass on the mode.
	counts := map[int32]int{}
	for i := 0; i < tab.Len(); i++ {
		counts[tab.Row(i)[0]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < tab.Len()/3 {
		t.Errorf("Zipf mode frequency %d/%d, expected heavy skew", max, tab.Len())
	}
}

func TestZipfParameterFloors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tab := Zipf(rng, 10, 2, 1, 0.5) // degenerate alphabet and s both floored
	if tab.Len() != 10 || tab.Degree() != 2 {
		t.Fatalf("shape %dx%d", tab.Len(), tab.Degree())
	}
}

func TestCensusSchemaAndValues(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tab := Census(rng, 100, 8)
	if tab.Len() != 100 || tab.Degree() != 8 {
		t.Fatalf("shape %dx%d", tab.Len(), tab.Degree())
	}
	names := tab.Schema().Names()
	if names[0] != "age" || names[2] != "sex" {
		t.Errorf("unexpected schema %v", names)
	}
	// sex column only has F/M.
	if sz := tab.Schema().Attribute(2).AlphabetSize(); sz > 2 {
		t.Errorf("sex alphabet size %d", sz)
	}
}

func TestCensusWideSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := Census(rng, 10, 19)
	if tab.Degree() != 19 {
		t.Fatalf("Degree = %d, want 19", tab.Degree())
	}
	names := tab.Schema().Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate column name %q", n)
		}
		seen[n] = true
	}
}

func TestSunflowerStructure(t *testing.T) {
	tab := Sunflower(4, 2)
	if tab.Len() != 5 || tab.Degree() != 8 {
		t.Fatalf("shape %dx%d, want 5x8", tab.Len(), tab.Degree())
	}
	mat := metric.NewMatrix(tab)
	// Center to petal: w; petal to petal: 2w.
	if d := mat.Dist(0, 1); d != 2 {
		t.Errorf("center-petal distance %d, want 2", d)
	}
	if d := mat.Dist(1, 2); d != 4 {
		t.Errorf("petal-petal distance %d, want 4", d)
	}
	all := []int{0, 1, 2, 3, 4}
	if got := mat.Diameter(all); got != 4 {
		t.Errorf("diameter %d, want 4", got)
	}
	// All 8 columns are non-uniform: group cost is 5×8 = 40 > |S|·d = 20,
	// the counterexample driving the safe-bound discussion.
	nonUniform := 0
	for j := 0; j < tab.Degree(); j++ {
		v := tab.Row(0)[j]
		for i := 1; i < tab.Len(); i++ {
			if tab.Row(i)[j] != v {
				nonUniform++
				break
			}
		}
	}
	if nonUniform != 8 {
		t.Errorf("non-uniform columns = %d, want 8", nonUniform)
	}
}

func TestDeterminism(t *testing.T) {
	gens := map[string]func(seed int64) *relation.Table{
		"uniform": func(s int64) *relation.Table { return Uniform(rand.New(rand.NewSource(s)), 20, 5, 3) },
		"planted": func(s int64) *relation.Table { return Planted(rand.New(rand.NewSource(s)), 20, 5, 3, 3, 1) },
		"zipf":    func(s int64) *relation.Table { return Zipf(rand.New(rand.NewSource(s)), 20, 5, 6, 1.5) },
		"census":  func(s int64) *relation.Table { return Census(rand.New(rand.NewSource(s)), 20, 6) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			a, b := gen(42), gen(42)
			if a.Len() != b.Len() {
				t.Fatal("same seed, different length")
			}
			for i := 0; i < a.Len(); i++ {
				sa, sb := a.Strings(i), b.Strings(i)
				for j := range sa {
					if sa[j] != sb[j] {
						t.Fatalf("same seed, row %d differs: %v vs %v", i, sa, sb)
					}
				}
			}
		})
	}
}
