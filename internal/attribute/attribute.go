// Package attribute implements the k-ANONYMITY-ON-ATTRIBUTES problem of
// §3.1: choose a minimum set of whole columns to suppress so that the
// projection of the table onto the surviving columns is k-anonymous.
// The paper proves this variant NP-hard for k > 2 even over a boolean
// alphabet (Theorem 3.2); this package provides the exact solver used
// as E5 ground truth (subset search in increasing cardinality, feasible
// for the moderate m of the reduction instances) and a greedy heuristic
// for larger tables.
package attribute

import (
	"fmt"
	"math/bits"

	"kanon/internal/relation"
)

// Result is an attribute-suppression solution: the columns dropped and
// whether the value is proven minimum.
type Result struct {
	Dropped []int
	Optimal bool
}

// IsKAnonymousProjection reports whether the table projected onto the
// columns NOT in drop is k-anonymous.
func IsKAnonymousProjection(t *relation.Table, drop []int, k int) bool {
	m := t.Degree()
	dropped := make([]bool, m)
	for _, j := range drop {
		if j < 0 || j >= m {
			return false
		}
		dropped[j] = true
	}
	return projectionOK(t, dropped, k)
}

func projectionOK(t *relation.Table, dropped []bool, k int) bool {
	counts := make(map[string]int, t.Len())
	keys := make([]string, t.Len())
	for i := 0; i < t.Len(); i++ {
		key := projKey(t.Row(i), dropped)
		keys[i] = key
		counts[key]++
	}
	for _, key := range keys {
		if counts[key] < k {
			return false
		}
	}
	return true
}

func projKey(r relation.Row, dropped []bool) string {
	b := make([]byte, 0, len(r)*3)
	for j, v := range r {
		if dropped[j] {
			continue
		}
		b = append(b, byte(j), byte(v), byte(v>>8))
	}
	return string(b)
}

// MaxExactColumns bounds the exact solver's subset enumeration (2^m).
const MaxExactColumns = 24

// Exact finds a minimum attribute-suppression set by enumerating column
// subsets in increasing cardinality. Requires m ≤ MaxExactColumns and
// n ≥ k (otherwise no suppression suffices).
func Exact(t *relation.Table, k int) (*Result, error) {
	m := t.Degree()
	if k < 1 {
		return nil, fmt.Errorf("attribute: k = %d < 1", k)
	}
	if t.Len() < k {
		return nil, fmt.Errorf("attribute: n = %d < k = %d", t.Len(), k)
	}
	if m > MaxExactColumns {
		return nil, fmt.Errorf("attribute: m = %d exceeds exact limit %d", m, MaxExactColumns)
	}
	dropped := make([]bool, m)
	// Enumerate masks grouped by popcount so the first hit is minimum.
	// For the sizes used in experiments (m ≤ 20) a popcount bucket scan
	// over all 2^m masks is simplest and fast enough.
	for size := 0; size <= m; size++ {
		for mask := 0; mask < 1<<uint(m); mask++ {
			if bits.OnesCount(uint(mask)) != size {
				continue
			}
			for j := 0; j < m; j++ {
				dropped[j] = mask&(1<<uint(j)) != 0
			}
			if projectionOK(t, dropped, k) {
				return &Result{Dropped: maskColumns(mask, m), Optimal: true}, nil
			}
		}
	}
	// Dropping every column leaves the empty projection, under which
	// all n ≥ k rows are identical — so the loop always returns by
	// size = m; this is unreachable.
	return nil, fmt.Errorf("attribute: internal: exhausted subsets without a solution")
}

func maskColumns(mask, m int) []int {
	var out []int
	for j := 0; j < m; j++ {
		if mask&(1<<uint(j)) != 0 {
			out = append(out, j)
		}
	}
	if out == nil {
		out = []int{}
	}
	return out
}

// Greedy suppresses, at each step, the column whose removal minimizes
// the number of rows violating k-anonymity, until the projection is
// k-anonymous. No approximation guarantee (the problem is as hard as
// set cover), but fast: O(m² · n) key construction.
func Greedy(t *relation.Table, k int) (*Result, error) {
	m := t.Degree()
	if k < 1 {
		return nil, fmt.Errorf("attribute: k = %d < 1", k)
	}
	if t.Len() < k {
		return nil, fmt.Errorf("attribute: n = %d < k = %d", t.Len(), k)
	}
	dropped := make([]bool, m)
	violations := func() int {
		counts := make(map[string]int, t.Len())
		keys := make([]string, t.Len())
		for i := 0; i < t.Len(); i++ {
			key := projKey(t.Row(i), dropped)
			keys[i] = key
			counts[key]++
		}
		bad := 0
		for _, key := range keys {
			if counts[key] < k {
				bad++
			}
		}
		return bad
	}
	var out []int
	for violations() > 0 {
		bestJ, bestBad := -1, -1
		for j := 0; j < m; j++ {
			if dropped[j] {
				continue
			}
			dropped[j] = true
			bad := violations()
			dropped[j] = false
			if bestBad == -1 || bad < bestBad {
				bestJ, bestBad = j, bad
			}
		}
		if bestJ == -1 {
			return nil, fmt.Errorf("attribute: internal: violations remain with all columns dropped")
		}
		dropped[bestJ] = true
		out = append(out, bestJ)
	}
	if out == nil {
		out = []int{}
	}
	return &Result{Dropped: out, Optimal: false}, nil
}
