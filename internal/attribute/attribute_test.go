package attribute

import (
	"math/rand"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/relation"
)

func TestIsKAnonymousProjection(t *testing.T) {
	tab := relation.MustFromVectors([][]int{
		{1, 10}, {2, 10}, {1, 20}, {2, 20},
	})
	if IsKAnonymousProjection(tab, nil, 2) {
		t.Error("full projection should not be 2-anonymous (all rows distinct)")
	}
	if !IsKAnonymousProjection(tab, []int{0}, 2) {
		t.Error("dropping column 0 leaves pairs {10,10},{20,20}")
	}
	if !IsKAnonymousProjection(tab, []int{1}, 2) {
		t.Error("dropping column 1 leaves pairs {1,1},{2,2}")
	}
	if !IsKAnonymousProjection(tab, []int{0, 1}, 4) {
		t.Error("empty projection makes all rows identical")
	}
	if IsKAnonymousProjection(tab, []int{5}, 2) {
		t.Error("out-of-range drop column accepted")
	}
}

func TestExactMinimum(t *testing.T) {
	// Column 0 unique per row; column 1 pairs rows; column 2 constant.
	tab := relation.MustFromVectors([][]int{
		{1, 10, 7}, {2, 10, 7}, {3, 20, 7}, {4, 20, 7},
	})
	r, err := Exact(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Optimal || len(r.Dropped) != 1 || r.Dropped[0] != 0 {
		t.Errorf("Exact = %+v, want optimal drop of column 0", r)
	}
}

func TestExactZeroDrop(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1, 2}, {1, 2}, {1, 2}})
	r, err := Exact(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dropped) != 0 {
		t.Errorf("Dropped = %v, want none", r.Dropped)
	}
}

func TestExactAllColumns(t *testing.T) {
	// Every column distinguishes all rows: must drop everything.
	tab := relation.MustFromVectors([][]int{
		{1, 5}, {2, 6}, {3, 7},
	})
	r, err := Exact(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dropped) != 2 {
		t.Errorf("Dropped = %v, want both columns", r.Dropped)
	}
}

func TestExactErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	if _, err := Exact(tab, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Exact(tab, 3); err == nil {
		t.Error("accepted n < k")
	}
	wide := dataset.Uniform(rand.New(rand.NewSource(1)), 4, MaxExactColumns+1, 2)
	if _, err := Exact(wide, 2); err == nil {
		t.Error("accepted m over the exact limit")
	}
}

func TestGreedyFeasibleAndNeverBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(10)
		m := 2 + rng.Intn(6)
		k := 2 + rng.Intn(2)
		tab := dataset.Uniform(rng, n, m, 2)
		ex, err := Exact(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if !IsKAnonymousProjection(tab, gr.Dropped, k) {
			t.Fatalf("trial %d: greedy result infeasible", trial)
		}
		if !IsKAnonymousProjection(tab, ex.Dropped, k) {
			t.Fatalf("trial %d: exact result infeasible", trial)
		}
		if len(gr.Dropped) < len(ex.Dropped) {
			t.Fatalf("trial %d: greedy %d beat exact %d", trial, len(gr.Dropped), len(ex.Dropped))
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	if _, err := Greedy(tab, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Greedy(tab, 3); err == nil {
		t.Error("accepted n < k")
	}
}

func TestGreedyZeroDrop(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1, 2}, {1, 2}})
	r, err := Greedy(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Dropped) != 0 {
		t.Errorf("Dropped = %v, want none", r.Dropped)
	}
}
