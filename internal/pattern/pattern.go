// Package pattern implements a projection-pattern set-cover solver for
// suppression k-anonymity, in the spirit of the low-degree exact
// algorithm the paper attributes to Sweeney [8] ("for the special case
// m = O(log n) ... a polynomial time exact algorithm has been recently
// proposed"). Since [8] was never published, this package builds the
// natural algorithm in that regime from the machinery already in the
// repository:
//
// Every group of a k-anonymization is determined by a *pattern* — the
// set of columns it keeps — and the shared values on those columns. So
// the candidate groups are, for each of the 2^m column subsets P, the
// buckets of rows that agree on P and have at least k members. A group
// anonymized under pattern P costs |group| · |P̄| stars. Running the
// paper's own Phase 1 greedy + Phase 2 Reduce over this family yields a
// k-anonymizer whose candidate family is *complete*: the groups of an
// optimal solution all appear in it (with their exact costs), which is
// what makes this family interesting for small m, in contrast to the
// diameter-weighted families of §4.2/§4.3 whose weights only bound costs.
//
// The family has at most 2^m · n/k useful sets, so the approach is
// exponential in m but polynomial in n — complementary to Theorem 4.1's
// O(n^{2k}), matching the paper's advice that its own algorithms are
// "best applied in cases with high-dimensional records".
package pattern

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"kanon/internal/core"
	"kanon/internal/cover"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/relation"
)

// MaxColumns bounds the 2^m pattern enumeration.
const MaxColumns = 20

// Result mirrors algo.Result for the pattern solver.
type Result struct {
	K          int
	Partition  *core.Partition
	Suppressor *core.Suppressor
	Anonymized *relation.Table
	Cost       int
	// FamilySize is the number of (pattern, bucket) candidate groups
	// offered to the greedy cover.
	FamilySize int
}

// Anonymize runs greedy set cover over the pattern family and converts
// the cover into a k-anonymization. Requires m ≤ MaxColumns.
//
// The greedy ratio for a candidate group S under pattern P is
// (per-row stars) · |S| / |S ∩ uncovered| — the natural weighted set
// cover objective where a set's weight is its total star cost. Unlike
// the diameter-weighted greedy, the weight here is the group's exact
// final cost.
func Anonymize(t *relation.Table, k int) (*Result, error) {
	return AnonymizeTraced(t, k, nil)
}

// AnonymizeTraced is Anonymize with instrumentation under the given
// parent span: a "pattern.family" span around the 2^m enumeration, a
// "pattern.suppress" span around the final suppression, cover spans via
// the cover package, and counters for patterns enumerated and candidate
// sets generated. Tracing never changes the result.
func AnonymizeTraced(t *relation.Table, k int, sp *obs.Span) (*Result, error) {
	return AnonymizeCtx(context.Background(), t, k, sp)
}

// AnonymizeCtx is AnonymizeTraced with cancellation: the context is
// checked once per enumerated pattern (each pattern costs an O(n) bucket
// pass) and per greedy round via the cover package, so the 2^m
// enumeration aborts promptly when the caller cancels or times out.
func AnonymizeCtx(ctx context.Context, t *relation.Table, k int, sp *obs.Span) (*Result, error) {
	n, m := t.Len(), t.Degree()
	if k < 1 {
		return nil, fmt.Errorf("pattern: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("pattern: n = %d < k = %d", n, k)
	}
	if m > MaxColumns {
		return nil, fmt.Errorf("pattern: m = %d exceeds limit %d", m, MaxColumns)
	}

	fs := sp.Start("pattern.family")
	var family []cover.Set
	emit := func(g []int, starCols int) {
		if len(g) < k {
			return
		}
		// Weight = total stars for this group: |g| rows × starCols.
		family = append(family, cover.Set{Members: g, Weight: len(g) * starCols})
	}
	if pk := metric.NewRadixPacker(t); pk != nil {
		// Fast path: each row's projection onto the pattern hashes
		// perfectly into a uint64 (mixed-radix digits precomputed per
		// row), so the 2^m bucket passes do integer map operations
		// instead of building and hashing byte-string keys. Buckets are
		// emitted in first-occurrence order — the exact order the
		// string path produces — so the family, and therefore the
		// greedy cover, is byte-identical.
		buckets := map[uint64][]int{}
		var order []uint64
		for pat := 0; pat < 1<<uint(m); pat++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pattern: family: %w", err)
			}
			starCols := m - bits.OnesCount(uint(pat))
			clear(buckets)
			order = order[:0]
			for i := 0; i < n; i++ {
				key := pk.ProjectionKey(i, uint(pat))
				if _, ok := buckets[key]; !ok {
					order = append(order, key)
				}
				buckets[key] = append(buckets[key], i)
			}
			for _, key := range order {
				emit(buckets[key], starCols)
			}
		}
	} else {
		for pat := 0; pat < 1<<uint(m); pat++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pattern: family: %w", err)
			}
			starCols := m - bits.OnesCount(uint(pat))
			buckets := map[string][]int{}
			var order []string
			for i := 0; i < n; i++ {
				key := patternKey(t.Row(i), pat)
				if _, ok := buckets[key]; !ok {
					order = append(order, key)
				}
				buckets[key] = append(buckets[key], i)
			}
			for _, key := range order {
				emit(buckets[key], starCols)
			}
		}
	}

	fs.End()
	sp.Counter("pattern.patterns_enumerated").Add(int64(1) << uint(m))
	sp.Counter("pattern.sets_generated").Add(int64(len(family)))

	chosen, err := cover.GreedyCtx(ctx, n, family, sp)
	if err != nil {
		return nil, fmt.Errorf("pattern: %w", err)
	}
	p, err := cover.ReduceTraced(n, chosen, k, sp)
	if err != nil {
		return nil, fmt.Errorf("pattern: %w", err)
	}
	if err := p.Validate(n, k, 0); err != nil {
		return nil, fmt.Errorf("pattern: internal: %w", err)
	}
	ss := sp.Start("pattern.suppress")
	sup := p.Suppressor(t)
	anon := sup.Apply(t)
	ss.End()
	if !anon.IsKAnonymous(k) {
		return nil, fmt.Errorf("pattern: internal: output not %d-anonymous", k)
	}
	return &Result{
		K:          k,
		Partition:  p,
		Suppressor: sup,
		Anonymized: anon,
		Cost:       sup.Stars(),
		FamilySize: len(family),
	}, nil
}

// patternKey renders the row restricted to the kept columns in pat.
func patternKey(r relation.Row, pat int) string {
	b := make([]byte, 0, len(r)*3)
	for j, v := range r {
		if pat&(1<<uint(j)) == 0 {
			continue
		}
		b = append(b, byte(j), byte(v), byte(v>>8))
	}
	return string(b)
}

// BestSingleGroup returns, for diagnostics, the cheapest single
// candidate group (pattern, bucket) covering a given row, or an error if
// none of size ≥ k exists (cannot happen for n ≥ k: the empty pattern
// buckets all rows together).
func BestSingleGroup(t *relation.Table, k, row int) (members []int, weight int, err error) {
	n, m := t.Len(), t.Degree()
	if row < 0 || row >= n {
		return nil, 0, fmt.Errorf("pattern: row %d out of range", row)
	}
	if m > MaxColumns {
		return nil, 0, fmt.Errorf("pattern: m = %d exceeds limit %d", m, MaxColumns)
	}
	bestW := -1
	var best []int
	for pat := 0; pat < 1<<uint(m); pat++ {
		starCols := m - bits.OnesCount(uint(pat))
		key := patternKey(t.Row(row), pat)
		var g []int
		for i := 0; i < n; i++ {
			if patternKey(t.Row(i), pat) == key {
				g = append(g, i)
			}
		}
		if len(g) < k {
			continue
		}
		w := len(g) * starCols
		if bestW == -1 || w < bestW {
			bestW, best = w, g
		}
	}
	if bestW == -1 {
		return nil, 0, fmt.Errorf("pattern: no group of size ≥ %d covers row %d", k, row)
	}
	sort.Ints(best)
	return best, bestW, nil
}
