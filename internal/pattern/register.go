package pattern

import "kanon/internal/solver"

func init() {
	solver.Register(solver.Info{
		Name:        "pattern",
		Description: "projection-pattern set cover for low-degree tables",
		Run: func(req solver.Request) (*solver.Result, error) {
			r, err := AnonymizeCtx(req.Context(), req.Table, req.K, req.Trace)
			if err != nil {
				return nil, err
			}
			return &solver.Result{Partition: r.Partition}, nil
		},
	})
}
