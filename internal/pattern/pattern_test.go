package pattern

import (
	"math/rand"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/relation"
)

func TestAnonymizeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{2, 3} {
		tab := dataset.Uniform(rng, 20, 5, 2)
		r, err := Anonymize(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Anonymized.IsKAnonymous(k) {
			t.Errorf("k=%d: output not k-anonymous", k)
		}
		if r.Anonymized.TotalStars() != r.Cost {
			t.Errorf("k=%d: cost %d != stars %d", k, r.Cost, r.Anonymized.TotalStars())
		}
		if r.FamilySize == 0 {
			t.Error("family size not recorded")
		}
	}
}

func TestAnonymizeDuplicateHeavy(t *testing.T) {
	// Duplicate-heavy data: the full-column pattern buckets have ≥ k
	// rows, so the solver pays nothing.
	tab := relation.MustFromVectors([][]int{
		{1, 2, 3}, {1, 2, 3}, {4, 5, 6}, {4, 5, 6}, {1, 2, 3},
	})
	r, err := Anonymize(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("cost = %d, want 0", r.Cost)
	}
}

func TestAnonymizeErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	if _, err := Anonymize(tab, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Anonymize(tab, 3); err == nil {
		t.Error("accepted n < k")
	}
	wide := dataset.Uniform(rand.New(rand.NewSource(2)), 4, MaxColumns+1, 2)
	if _, err := Anonymize(wide, 2); err == nil {
		t.Error("accepted m over limit")
	}
}

// TestNearOptimalOnSmallInstances: the pattern family contains every
// group of every optimal solution at exact cost, so greedy lands close
// to OPT; assert within the set-cover factor on a fixed corpus.
func TestNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(6)
		k := 2 + trial%2
		tab := dataset.Uniform(rng, n, 4, 2)
		opt, err := exact.OPT(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Anonymize(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost < opt {
			t.Fatalf("trial %d: pattern cost %d below OPT %d", trial, r.Cost, opt)
		}
		if ratio := exact.Ratio(r.Cost, opt); ratio > 3 {
			t.Errorf("trial %d: ratio %.2f unexpectedly poor (cost %d, OPT %d)", trial, ratio, r.Cost, opt)
		}
	}
}

func TestBestSingleGroup(t *testing.T) {
	tab := relation.MustFromVectors([][]int{
		{1, 9}, {1, 8}, {2, 7}, {2, 6},
	})
	// Row 0's cheapest ≥2-group: keep column 0 (value 1) → rows {0,1},
	// starring column 1: weight 2·1 = 2.
	members, weight, err := BestSingleGroup(tab, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if weight != 2 || len(members) != 2 || members[0] != 0 || members[1] != 1 {
		t.Errorf("got members=%v weight=%d, want [0 1] weight 2", members, weight)
	}
	if _, _, err := BestSingleGroup(tab, 2, 99); err == nil {
		t.Error("accepted out-of-range row")
	}
}
