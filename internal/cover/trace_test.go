package cover

import (
	"math/rand"
	"reflect"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/metric"
	"kanon/internal/obs"
)

// TestTraceDeterministicCover runs the full ball-greedy pipeline with a
// nil span and with a live one and requires identical chosen covers —
// the instrumentation must be invisible to the algorithm.
func TestTraceDeterministicCover(t *testing.T) {
	tab := dataset.Planted(rand.New(rand.NewSource(5)), 200, 6, 5, 3, 1)
	mat := metric.NewMatrix(tab)

	plain, err := GreedyBallsParallel(mat, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	root := tr.Start("test")
	traced, err := GreedyBallsParallelTraced(mat, 3, 4, root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Error("chosen cover changed under tracing")
	}

	snap := tr.Snapshot()
	if snap.Counters["cover.sets_picked"] != int64(len(traced)) {
		t.Errorf("cover.sets_picked = %d, want %d",
			snap.Counters["cover.sets_picked"], len(traced))
	}
	if snap.Counters["cover.greedy_rounds"] <= 0 || snap.Counters["cover.balls_considered"] <= 0 {
		t.Errorf("missing greedy counters: %v", snap.Counters)
	}

	// The explicit-family path must be just as oblivious.
	famPlain, err := BallsParallel(mat, 3, WeightRadiusBound, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := obs.New()
	root2 := tr2.Start("test")
	famTraced, err := BallsParallelTraced(mat, 3, WeightRadiusBound, 4, root2)
	root2.End()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(famPlain, famTraced) {
		t.Error("ball family changed under tracing")
	}
	if got := tr2.Snapshot().Counters["cover.sets_generated"]; got != int64(len(famTraced)) {
		t.Errorf("cover.sets_generated = %d, want %d", got, len(famTraced))
	}
}
