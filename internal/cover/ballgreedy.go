package cover

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"kanon/internal/metric"
	"kanon/internal/obs"
)

// GreedyBalls runs the greedy cover over the ball family without
// materializing it, which is what makes Theorem 4.2's algorithm scale.
// It is exactly equivalent to Greedy(n, Balls(mat, k,
// WeightRadiusBound)) (the tests cross-check costs) but stores at most
// one sorted neighbor order per center, so memory is O(n²) small words
// instead of O(n²) full member slices, and each round re-evaluates at
// most a few centers. Under a matrix-free kernel not even the orders
// are cached: each center evaluation recomputes its distance row into
// pooled scratch, keeping the whole cover at O(n·workers) memory.
//
// Correctness of the laziness: for a fixed center, every ball's ratio
// weight/uncovered is nondecreasing as the covered region grows, hence
// so is the center's best ratio. A priority queue keyed by last-known
// best ratio therefore yields the true global minimum once the popped
// center's recomputed key is no worse than the next key in the queue.
func GreedyBalls(mat metric.Kernel, k int) ([]Set, error) {
	return GreedyBallsParallel(mat, k, 0)
}

// GreedyBallsParallel is GreedyBalls with an explicit worker count (0
// means all CPUs, 1 forces the sequential path). Only the neighbor-
// order precomputation is sharded — the greedy selection loop is
// inherently sequential — so the chosen cover is byte-identical for
// every worker count.
func GreedyBallsParallel(mat metric.Kernel, k, workers int) ([]Set, error) {
	return GreedyBallsParallelTraced(mat, k, workers, nil)
}

// GreedyBallsParallelTraced is GreedyBallsParallel with instrumentation
// under the given parent span: child spans for the two phases
// ("cover.neighbor-order" precompute, "cover.greedy" selection loop)
// and counters for greedy rounds run (cover.greedy_rounds), center
// re-evaluations (cover.balls_considered), and sets picked
// (cover.sets_picked). Tracing never changes the chosen cover.
func GreedyBallsParallelTraced(mat metric.Kernel, k, workers int, sp *obs.Span) ([]Set, error) {
	return GreedyBallsCtx(context.Background(), mat, k, workers, sp)
}

// GreedyBallsCtx is GreedyBallsParallelTraced with cancellation: the
// context is checked once per center during the neighbor-order
// precompute and once per selection round, so covers over large tables
// abort promptly when the caller cancels or times out. The returned
// error wraps ctx.Err().
func GreedyBallsCtx(ctx context.Context, mat metric.Kernel, k, workers int, sp *obs.Span) ([]Set, error) {
	n := mat.Len()
	if k < 1 {
		return nil, fmt.Errorf("cover: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("cover: n = %d < k = %d", n, k)
	}

	// Dense matrices cache one neighbor order per center (ord[c]: the
	// other rows sorted by distance from c, ties by index, matching
	// Balls for reproducible cross-checks) — the cache costs at most
	// the matrix's own O(n²) footprint again, and makes re-evaluations
	// pure lookups. Matrix-free kernels skip the cache entirely: every
	// center evaluation recomputes its distance row and order into
	// pooled scratch, keeping the cover at O(n·workers) memory — the
	// point of running matrix-free.
	var ord [][]int32
	if _, dense := mat.(*metric.Matrix); dense {
		ns := sp.Start("cover.neighbor-order")
		ord = make([][]int32, n)
		forEachIndex(n, workers, func(c int) {
			if ctx.Err() != nil {
				return // drain remaining centers cheaply; checked below
			}
			s := getScratch(n)
			neighborOrder(mat, c, s)
			o := make([]int32, n)
			copy(o, s.ord)
			putScratch(s)
			ord[c] = o
		})
		ns.End()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cover: neighbor order: %w", err)
		}
	}

	gs := sp.Start("cover.greedy")
	defer gs.End()
	rounds := 0
	var considered atomic.Int64
	var chosen []Set
	defer func() {
		sp.Counter("cover.greedy_rounds").Add(int64(rounds))
		sp.Counter("cover.balls_considered").Add(considered.Load())
		sp.Counter("cover.sets_picked").Add(int64(len(chosen)))
	}()
	ballRadius := sp.Histogram("cover.ball_radius")
	ballSize := sp.Histogram("cover.ball_size")
	roundSize := sp.Histogram("cover.round_size")
	progress := sp.Progress("cover.covered")
	progress.SetTotal(int64(n))

	covered := make([]bool, n)
	remaining := n

	// evalCenter returns the minimum-ratio ball centered at c against
	// the current covered set, or ok=false if no ball of c contains an
	// uncovered element. It fills s.dist with c's distance row (and,
	// without the dense cache, s.ord with c's neighbor order) as a side
	// effect the caller may consume.
	evalCenter := func(c int, s *ballScratch) (w, unc, end int, ok bool) {
		considered.Add(1)
		var o []int32
		if ord != nil {
			o = ord[c]
			if rf, has := mat.(metric.RowFiller); has {
				rf.DistRow(c, s.dist)
			} else {
				for v := 0; v < n; v++ {
					s.dist[v] = int32(mat.Dist(c, v))
				}
			}
		} else {
			neighborOrder(mat, c, s)
			o = s.ord
		}
		uncCount := 0
		bw, bu, be := 0, 0, 0
		for e := 0; e < n; e++ {
			if !covered[o[e]] {
				uncCount++
			}
			size := e + 1
			if size < k || uncCount == 0 {
				continue
			}
			if size < n && s.dist[o[e+1]] == s.dist[o[e]] {
				continue // not a distance boundary
			}
			weight := 2 * int(s.dist[o[e]])
			if !ok || better(weight, uncCount, bw, bu) {
				bw, bu, be, ok = weight, uncCount, size, true
			}
		}
		return bw, bu, be, ok
	}

	// Initial heap: every center evaluated against the empty cover.
	// Evaluations are independent (covered is all-false), so they shard
	// across workers; entries are assembled in center order, keeping
	// the heap — and hence the chosen cover — byte-identical for every
	// worker count.
	entries := make([]centerEntry, n)
	valid := make([]bool, n)
	forEachIndex(n, workers, func(c int) {
		if ctx.Err() != nil {
			return // drain remaining centers cheaply; checked below
		}
		s := getScratch(n)
		if w, unc, end, ok := evalCenter(c, s); ok {
			entries[c] = centerEntry{center: c, weight: w, unc: unc, end: end}
			valid[c] = true
		}
		putScratch(s)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cover: ball greedy: %w", err)
	}
	pq := make(centerHeap, 0, n)
	for c := 0; c < n; c++ {
		if valid[c] {
			pq = append(pq, entries[c])
		}
	}
	heap.Init(&pq)

	scratch := getScratch(n)
	defer putScratch(scratch)
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cover: ball greedy: %w", err)
		}
		if len(pq) == 0 {
			return nil, fmt.Errorf("cover: ball family cannot cover %d remaining elements", remaining)
		}
		rounds++
		top := heap.Pop(&pq).(centerEntry)
		w, unc, end, ok := evalCenter(top.center, scratch)
		if !ok {
			continue
		}
		fresh := centerEntry{center: top.center, weight: w, unc: unc, end: end}
		if len(pq) > 0 && pq[0].less(fresh) {
			heap.Push(&pq, fresh)
			continue
		}
		// scratch.ord still holds top.center's order from the eval just
		// above when running without the dense cache.
		o := scratch.ord
		if ord != nil {
			o = ord[top.center]
		}
		members := make([]int, end)
		for i := 0; i < end; i++ {
			v := int(o[i])
			members[i] = v
			if !covered[v] {
				covered[v] = true
				remaining--
			}
		}
		sort.Ints(members)
		chosen = append(chosen, Set{Members: members, Weight: w})
		ballRadius.Observe(int64(w / 2))
		ballSize.Observe(int64(end))
		roundSize.Observe(int64(unc))
		progress.Add(int64(unc))
		if remaining > 0 {
			if w2, unc2, end2, ok2 := evalCenter(top.center, scratch); ok2 {
				heap.Push(&pq, centerEntry{center: top.center, weight: w2, unc: unc2, end: end2})
			}
		}
	}
	return chosen, nil
}

// better reports whether ratio w1/u1 beats w2/u2 under the same
// tie-breaking as ratioEntry.less: smaller ratio first, then larger
// uncovered count.
func better(w1, u1, w2, u2 int) bool {
	l := int64(w1) * int64(u2)
	r := int64(w2) * int64(u1)
	if l != r {
		return l < r
	}
	return u1 > u2
}

// centerEntry is a heap entry: a center with its last-known best ball.
type centerEntry struct {
	center int
	weight int
	unc    int
	end    int
}

func (a centerEntry) less(b centerEntry) bool {
	l := int64(a.weight) * int64(b.unc)
	r := int64(b.weight) * int64(a.unc)
	if l != r {
		return l < r
	}
	if a.unc != b.unc {
		return a.unc > b.unc
	}
	return a.center < b.center
}

type centerHeap []centerEntry

func (h centerHeap) Len() int           { return len(h) }
func (h centerHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h centerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *centerHeap) Push(x any)        { *h = append(*h, x.(centerEntry)) }
func (h *centerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
