package cover

import (
	"context"
	"fmt"
	"math"

	"kanon/internal/metric"
	"kanon/internal/obs"
)

// Exhaustive builds the paper's collection C: every subset of {0..n−1}
// with cardinality in [k, 2k−1], weighted by its true diameter. The
// family has Σ_{s=k}^{2k−1} C(n, s) sets; maxSets guards against
// accidental blow-ups (pass 0 for the default of 5 million). Use the
// ball family when this errors — that trade-off is exactly the paper's
// §4.3.
func Exhaustive(mat metric.Kernel, k, maxSets int) ([]Set, error) {
	return ExhaustiveTraced(mat, k, maxSets, nil)
}

// ExhaustiveTraced is Exhaustive with instrumentation under the given
// parent span: a "cover.family.exhaustive" span around the enumeration
// and a cover.sets_generated counter for the candidate sets emitted.
func ExhaustiveTraced(mat metric.Kernel, k, maxSets int, sp *obs.Span) ([]Set, error) {
	return ExhaustiveCtx(context.Background(), mat, k, maxSets, sp)
}

// ExhaustiveCtx is ExhaustiveTraced with cancellation: the context is
// polled every 1024 enumerated sets, so the O(|V|^{2k−1}) enumeration
// aborts promptly when the caller cancels or times out. The returned
// error wraps ctx.Err().
func ExhaustiveCtx(ctx context.Context, mat metric.Kernel, k, maxSets int, sp *obs.Span) ([]Set, error) {
	fs := sp.Start("cover.family.exhaustive")
	defer fs.End()
	n := mat.Len()
	if k < 1 {
		return nil, fmt.Errorf("cover: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("cover: n = %d < k = %d", n, k)
	}
	if maxSets <= 0 {
		maxSets = 5_000_000
	}
	count := 0.0
	for s := k; s <= 2*k-1 && s <= n; s++ {
		count += binomial(n, s)
	}
	if count > float64(maxSets) {
		return nil, fmt.Errorf("cover: exhaustive family would hold ~%.3g sets (max %d); use the ball family", count, maxSets)
	}

	sets := make([]Set, 0, int(count))
	// Depth-first enumeration of combinations with incremental
	// diameter maintenance: extending a prefix by element e costs
	// O(|prefix|) distance lookups. Cancellation is polled every 1024
	// emitted sets and unwinds the recursion via ctxErr.
	prefix := make([]int, 0, 2*k-1)
	var ctxErr error
	var rec func(start, diam int)
	rec = func(start, diam int) {
		if ctxErr != nil {
			return
		}
		if len(prefix) >= k {
			if len(sets)&1023 == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return
				}
			}
			sets = append(sets, Set{Members: append([]int(nil), prefix...), Weight: diam})
		}
		if len(prefix) == 2*k-1 {
			return
		}
		for e := start; e < n; e++ {
			nd := mat.DiameterWith(prefix, diam, e)
			prefix = append(prefix, e)
			rec(e+1, nd)
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(0, 0)
	if ctxErr != nil {
		return nil, fmt.Errorf("cover: exhaustive family: %w", ctxErr)
	}
	sp.Counter("cover.sets_generated").Add(int64(len(sets)))
	return sets, nil
}

// binomial returns C(n, s) as a float64 (guard arithmetic only).
func binomial(n, s int) float64 {
	if s < 0 || s > n {
		return 0
	}
	out := 1.0
	for i := 1; i <= s; i++ {
		out *= float64(n - s + i)
		out /= float64(i)
		if math.IsInf(out, 1) {
			return out
		}
	}
	return out
}

// BallWeight selects how ball sets are weighted in the greedy cover.
type BallWeight int

const (
	// WeightRadiusBound weights S_{c,i} by 2·r where r is the largest
	// realized distance from c within the ball (r ≤ i). By the triangle
	// inequality this upper-bounds the true diameter (Lemma 4.2's
	// d(S_{c,i}) ≤ 2i), so Theorem 4.2's guarantee is preserved while
	// avoiding any pairwise diameter computation. This is the default.
	WeightRadiusBound BallWeight = iota
	// WeightTrueDiameter weights each ball by its exact diameter —
	// never weaker, but costs O(|S|²) per ball; ablation E10 measures
	// the cost/quality trade-off.
	WeightTrueDiameter
)

// BallsWitness builds the paper's alternative collection: for every
// ordered pair (c, c') the set S_{c,c'} = {v : d(c, v) ≤ d(c, c')},
// restricted to sets with at least k members and deduplicated per
// center. The paper advises choosing between this and the radius form
// by size; TestWitnessFamilyEqualsRadiusFamily shows the two families
// are identical once degenerate radii are removed, so the advice is
// moot — this constructor exists to substantiate that claim and for the
// E10 ablation.
func BallsWitness(mat metric.Kernel, k int, w BallWeight) ([]Set, error) {
	return BallsWitnessParallel(mat, k, w, 0)
}

// BallsWitnessParallel is BallsWitness with an explicit worker count (0
// means all CPUs, 1 forces the sequential path). Centers are
// independent, so per-center results are computed concurrently and
// concatenated in center order — the output is identical for every
// worker count.
func BallsWitnessParallel(mat metric.Kernel, k int, w BallWeight, workers int) ([]Set, error) {
	n := mat.Len()
	if k < 1 {
		return nil, fmt.Errorf("cover: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("cover: n = %d < k = %d", n, k)
	}
	perCenter := make([][]Set, n)
	forEachIndex(n, workers, func(c int) {
		var out []Set
		seen := map[int]bool{} // realized radii already emitted for c
		for w2 := 0; w2 < n; w2++ {
			r := mat.Dist(c, w2)
			if seen[r] {
				continue
			}
			seen[r] = true
			members := mat.Ball(c, r)
			if len(members) < k {
				continue
			}
			// Effective radius: largest realized distance within the
			// ball (matches Balls' weight convention).
			eff := 0
			for _, v := range members {
				if d := mat.Dist(c, v); d > eff {
					eff = d
				}
			}
			if eff != r {
				// A larger witness distance yields the same member set;
				// skip the duplicate (the set will be emitted at its
				// effective radius).
				continue
			}
			weight := 2 * eff
			if w == WeightTrueDiameter {
				weight = mat.Diameter(members)
			}
			out = append(out, Set{Members: members, Weight: weight})
		}
		perCenter[c] = out
	})
	return mergeCenters(perCenter), nil
}

// mergeCenters concatenates per-center set slices in center order — the
// deterministic merge that makes the sharded builders emit exactly the
// sequential order.
func mergeCenters(perCenter [][]Set) []Set {
	total := 0
	for _, s := range perCenter {
		total += len(s)
	}
	sets := make([]Set, 0, total)
	for _, s := range perCenter {
		sets = append(sets, s...)
	}
	return sets
}

// Balls builds the paper's collection D: for every center c ∈ V, the
// distinct balls S_{c,i} with at least k members.
//
// Only radii at which a ball actually grows are emitted, so the family
// has at most n distinct sets per center. This deduplicated family
// coincides with the paper's alternative formulation S_{c,c'} = {v :
// d(c, v) ≤ d(c, c')} (plus the radius-0 ball of exact duplicates): a
// ball changes only at realized distances, so enumerating realized radii
// and enumerating witnesses c' produce the same sets. The paper's advice
// to "substitute whichever collection is smaller" is therefore moot
// after deduplication — E10 confirms.
func Balls(mat metric.Kernel, k int, w BallWeight) ([]Set, error) {
	return BallsParallel(mat, k, w, 0)
}

// BallsParallel is Balls with an explicit worker count (0 means all
// CPUs, 1 forces the sequential path). Each center's balls are built by
// the counting-sort radius kernel (ballsForCenter) on one worker; the
// per-center results are concatenated in center order, so the family is
// byte-identical for every worker count.
func BallsParallel(mat metric.Kernel, k int, w BallWeight, workers int) ([]Set, error) {
	return BallsParallelTraced(mat, k, w, workers, nil)
}

// BallsParallelTraced is BallsParallel with instrumentation under the
// given parent span: a "cover.family.balls" span around the per-center
// construction and a cover.sets_generated counter for the Lemma 4.2
// candidate balls emitted. The family is identical with and without a
// span.
func BallsParallelTraced(mat metric.Kernel, k int, w BallWeight, workers int, sp *obs.Span) ([]Set, error) {
	return BallsCtx(context.Background(), mat, k, w, workers, sp)
}

// BallsCtx is BallsParallelTraced with cancellation: the context is
// checked once per center, so family construction over large tables
// aborts promptly when the caller cancels or times out. The returned
// error wraps ctx.Err().
func BallsCtx(ctx context.Context, mat metric.Kernel, k int, w BallWeight, workers int, sp *obs.Span) ([]Set, error) {
	fs := sp.Start("cover.family.balls")
	defer fs.End()
	n := mat.Len()
	if k < 1 {
		return nil, fmt.Errorf("cover: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("cover: n = %d < k = %d", n, k)
	}
	perCenter := make([][]Set, n)
	forEachIndex(n, workers, func(c int) {
		if ctx.Err() != nil {
			return // drain remaining centers cheaply; checked below
		}
		s := getScratch(n)
		perCenter[c] = ballsForCenter(mat, k, w, c, s)
		putScratch(s)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cover: ball family: %w", err)
	}
	sets := mergeCenters(perCenter)
	sp.Counter("cover.sets_generated").Add(int64(len(sets)))
	if sp != nil {
		ballSize := sp.Histogram("cover.ball_size")
		ballRadius := sp.Histogram("cover.ball_radius")
		for _, s := range sets {
			ballSize.Observe(int64(len(s.Members)))
			if w == WeightRadiusBound {
				ballRadius.Observe(int64(s.Weight / 2))
			}
		}
	}
	return sets, nil
}
