package cover

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/metric"
)

// TestGreedyBallsKernelEquivalence pins the lazy (matrix-free) greedy
// ball path to the dense one: the chosen cover must be byte-identical
// across kernels, for every worker count, on both clustered and
// near-uniform data. This is the cover-layer half of the repo-wide
// cross-kernel byte-identity contract.
func TestGreedyBallsKernelEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		for _, n := range []int{30, 120} {
			for _, k := range []int{2, 4} {
				rng := rand.New(rand.NewSource(seed))
				tab := dataset.Census(rng, n, 6)
				mat := metric.NewMatrix(tab)
				bit, err := metric.NewBitKernelCtx(context.Background(), tab)
				if err != nil {
					t.Fatal(err)
				}
				want, err := GreedyBallsCtx(context.Background(), mat, k, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3, 0} {
					got, err := GreedyBallsCtx(context.Background(), bit, k, workers, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("seed=%d n=%d k=%d workers=%d: lazy cover differs from dense", seed, n, k, workers)
					}
				}
			}
		}
	}
}

// TestBallsFamilyKernelEquivalence does the same for the materialized
// families, including the true-diameter weighting whose pruned sweep
// must reproduce the dense diameters exactly.
func TestBallsFamilyKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tab := dataset.Census(rng, 70, 6)
	mat := metric.NewMatrix(tab)
	bit, err := metric.NewBitKernelCtx(context.Background(), tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []BallWeight{WeightRadiusBound, WeightTrueDiameter} {
		for _, k := range []int{2, 3} {
			want, err := BallsCtx(context.Background(), mat, k, w, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := BallsCtx(context.Background(), bit, k, w, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("weighting=%v k=%d workers=%d: bitset family differs from dense", w, k, workers)
				}
			}
		}
	}
}
