package cover

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// normWorkers resolves a Workers knob: 0 or negative means all CPUs,
// and the count is clamped to the number of independent work items.
func normWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachIndex runs fn(i) for every i in [0, n) across the given number
// of workers. Work is handed out through an atomic counter so uneven
// per-index costs balance without a queue; fn must write only to
// per-index state (results indexed by i stay deterministic regardless
// of scheduling). workers ≤ 1 degenerates to a plain sequential loop
// with no goroutines, so the Workers: 1 path is exactly the sequential
// code.
func forEachIndex(n, workers int, fn func(i int)) {
	workers = normWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
