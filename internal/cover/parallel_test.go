package cover

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/metric"
)

// TestBallsParallelDeterministic is the determinism property test: the
// sharded family builders must emit byte-identical output to the
// Workers: 1 sequential path across seeds, sizes, and k.
func TestBallsParallelDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, n := range []int{10, 37, 120} {
			for _, k := range []int{2, 3, 5} {
				rng := rand.New(rand.NewSource(seed))
				tab := dataset.Census(rng, n, 6)
				mat := metric.NewMatrix(tab)
				for _, w := range []BallWeight{WeightRadiusBound, WeightTrueDiameter} {
					seq, err := BallsParallel(mat, k, w, 1)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{0, 2, 4, 7} {
						par, err := BallsParallel(mat, k, w, workers)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(seq, par) {
							t.Fatalf("seed=%d n=%d k=%d w=%v workers=%d: family differs from sequential", seed, n, k, w, workers)
						}
					}
				}
			}
		}
	}
}

func TestBallsWitnessParallelDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		rng := rand.New(rand.NewSource(seed))
		tab := dataset.Census(rng, 60, 6)
		mat := metric.NewMatrix(tab)
		seq, err := BallsWitnessParallel(mat, 3, WeightRadiusBound, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 3, 5} {
			par, err := BallsWitnessParallel(mat, 3, WeightRadiusBound, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("seed=%d workers=%d: witness family differs from sequential", seed, workers)
			}
		}
	}
}

func TestGreedyBallsParallelDeterministic(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		for _, n := range []int{25, 90} {
			for _, k := range []int{2, 4} {
				rng := rand.New(rand.NewSource(seed))
				tab := dataset.Census(rng, n, 6)
				mat := metric.NewMatrix(tab)
				seq, err := GreedyBallsParallel(mat, k, 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 2, 6} {
					par, err := GreedyBallsParallel(mat, k, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(seq, par) {
						t.Fatalf("seed=%d n=%d k=%d workers=%d: cover differs from sequential", seed, n, k, workers)
					}
				}
			}
		}
	}
}

// TestNeighborOrderMatchesComparisonSort pits the counting-sort kernel
// against a direct comparison sort on random matrices, and exercises
// the large-range fallback by scaling the same metric past the bucket
// cutoff (scaling preserves the order, so the two must agree).
func TestNeighborOrderMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		base := make([][]int, n)
		for i := range base {
			base[i] = make([]int, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := rng.Intn(9)
				base[i][j], base[j][i] = d, d
			}
		}
		small := metric.NewMatrixFunc(n, func(i, j int) int { return base[i][j] })
		// Scaling by a large constant forces the comparison-sort
		// fallback (bucket range ≫ 8n) without changing the order.
		big := metric.NewMatrixFunc(n, func(i, j int) int { return base[i][j] * 100000 })
		for c := 0; c < n; c++ {
			ref := make([]int32, n)
			for v := range ref {
				ref[v] = int32(v)
			}
			sort.Slice(ref, func(a, b int) bool {
				da, db := small.Dist(c, int(ref[a])), small.Dist(c, int(ref[b]))
				if da != db {
					return da < db
				}
				return ref[a] < ref[b]
			})
			for _, mat := range []*metric.Matrix{small, big} {
				s := getScratch(n)
				neighborOrder(mat, c, s)
				if !reflect.DeepEqual(s.ord, ref) {
					t.Fatalf("trial %d center %d (wide=%v): order %v, want %v", trial, c, mat.Wide(), s.ord, ref)
				}
				putScratch(s)
			}
		}
	}
}

// TestBallsOnWideMetric checks the family builder end-to-end on a
// metric whose distances exceed int16 — the widened-storage path plus
// the counting-sort fallback together.
func TestBallsOnWideMetric(t *testing.T) {
	n := 30
	mat := metric.NewMatrixFunc(n, func(i, j int) int { return (j - i) * 50000 })
	if !mat.Wide() {
		t.Fatal("expected wide storage")
	}
	seq, err := BallsParallel(mat, 3, WeightRadiusBound, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BallsParallel(mat, 3, WeightRadiusBound, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("wide-metric family differs between sequential and parallel")
	}
	if len(seq) == 0 {
		t.Fatal("no balls emitted")
	}
}

// TestIncrementalDiameterMatchesRecompute verifies the O(n²)-per-center
// incremental diameter against a from-scratch Diameter recomputation on
// every emitted ball.
func TestIncrementalDiameterMatchesRecompute(t *testing.T) {
	for _, seed := range []int64{2, 9, 31} {
		rng := rand.New(rand.NewSource(seed))
		tab := dataset.Uniform(rng, 50, 5, 4)
		mat := metric.NewMatrix(tab)
		sets, err := Balls(mat, 3, WeightTrueDiameter)
		if err != nil {
			t.Fatal(err)
		}
		for si, s := range sets {
			if want := mat.Diameter(s.Members); s.Weight != want {
				t.Fatalf("seed=%d set %d: incremental diameter %d, recomputed %d", seed, si, s.Weight, want)
			}
		}
	}
}
