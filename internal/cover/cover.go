// Package cover implements §4.2 of the paper: the greedy weighted
// set-cover approximation for the k-minimum diameter sum problem
// (Phase 1) and the Reduce procedure that converts the resulting cover
// into a (k, ·)-partition with no increase in diameter sum (Phase 2).
//
// Two candidate families are provided. Exhaustive enumerates every
// subset of V with cardinality in [k, 2k−1] (the collection C of
// §4.2.1), which is what Theorem 4.1 runs greedy over and costs
// O(|V|^{2k−1}) sets. Balls enumerates the collection D of §4.3 — the
// sets S_{c,i} = {v : d(c, v) ≤ i} — which is strongly polynomial and
// what Theorem 4.2 runs greedy over.
//
// The greedy rule follows the paper exactly: repeatedly choose the set S
// minimizing r(S) = weight(S) / |S ∩ (V − D)| where D is the covered
// region, until V is covered.
package cover

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"kanon/internal/core"
	"kanon/internal/metric"
	"kanon/internal/obs"
)

// Set is one candidate group offered to the greedy cover: its member
// row indices (sorted) and its weight — the set's diameter, or an upper
// bound on it in the ball family's radius-bound mode.
type Set struct {
	Members []int
	Weight  int
}

// Greedy runs the paper's greedy rule over an explicit family and
// returns the chosen sets in selection order. It returns an error if
// the family cannot cover all n elements.
//
// The implementation is lazy greedy with a priority queue: because a
// set's weight is fixed and its uncovered count only shrinks as the
// cover grows, r(S) is nondecreasing over time, so re-evaluating only
// the popped set is exact, not heuristic (ablation E10 cross-checks
// this against the naive full scan).
func Greedy(n int, sets []Set) ([]Set, error) {
	return GreedyTraced(n, sets, nil)
}

// GreedyTraced is Greedy with instrumentation attached under the given
// parent span (nil disables it, at the cost of a nil check): a
// "cover.greedy" span around the selection loop, and counters for
// rounds run (cover.greedy_rounds) and sets picked (cover.sets_picked).
// Tracing never changes the selection — the chosen cover is identical
// with and without a span.
func GreedyTraced(n int, sets []Set, sp *obs.Span) ([]Set, error) {
	return GreedyCtx(context.Background(), n, sets, sp)
}

// GreedyCtx is GreedyTraced with cancellation: the context is checked
// once per selection round, so long covers abort promptly when the
// caller cancels or times out. The returned error wraps ctx.Err(), so
// errors.Is(err, context.Canceled) works. Cancellation never corrupts
// state — the partial cover is simply discarded.
func GreedyCtx(ctx context.Context, n int, sets []Set, sp *obs.Span) ([]Set, error) {
	gs := sp.Start("cover.greedy")
	defer gs.End()
	rounds := 0
	var chosen []Set
	defer func() {
		sp.Counter("cover.greedy_rounds").Add(int64(rounds))
		sp.Counter("cover.sets_picked").Add(int64(len(chosen)))
	}()
	roundSize := sp.Histogram("cover.round_size")
	progress := sp.Progress("cover.covered")
	progress.SetTotal(int64(n))

	covered := make([]bool, n)
	remaining := n
	pq := make(ratioHeap, 0, len(sets))
	for i := range sets {
		u := len(sets[i].Members) // nothing covered yet
		if u == 0 {
			continue
		}
		pq = append(pq, ratioEntry{set: i, weight: sets[i].Weight, unc: u})
	}
	heap.Init(&pq)

	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cover: greedy: %w", err)
		}
		if len(pq) == 0 {
			return nil, fmt.Errorf("cover: family cannot cover %d remaining elements", remaining)
		}
		rounds++
		top := heap.Pop(&pq).(ratioEntry)
		// Re-evaluate the popped set's uncovered count.
		unc := 0
		for _, v := range sets[top.set].Members {
			if !covered[v] {
				unc++
			}
		}
		if unc == 0 {
			continue // fully covered since queued; drop
		}
		if unc != top.unc {
			// Stale: ratio increased. Reinsert unless it still beats
			// the next candidate.
			top.unc = unc
			if len(pq) > 0 && pq[0].less(top) {
				heap.Push(&pq, top)
				continue
			}
		}
		// Select.
		s := sets[top.set]
		chosen = append(chosen, Set{Members: append([]int(nil), s.Members...), Weight: s.Weight})
		for _, v := range s.Members {
			if !covered[v] {
				covered[v] = true
				remaining--
			}
		}
		roundSize.Observe(int64(unc))
		progress.Add(int64(unc))
	}
	return chosen, nil
}

// ratioEntry is a heap entry: candidate set index with its weight and
// last-known uncovered count.
type ratioEntry struct {
	set    int
	weight int
	unc    int
}

// less orders by ratio weight/unc ascending, breaking ties toward
// larger uncovered coverage and then smaller set index for determinism.
func (a ratioEntry) less(b ratioEntry) bool {
	l := int64(a.weight) * int64(b.unc)
	r := int64(b.weight) * int64(a.unc)
	if l != r {
		return l < r
	}
	if a.unc != b.unc {
		return a.unc > b.unc
	}
	return a.set < b.set
}

type ratioHeap []ratioEntry

func (h ratioHeap) Len() int           { return len(h) }
func (h ratioHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h ratioHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ratioHeap) Push(x any)        { *h = append(*h, x.(ratioEntry)) }
func (h *ratioHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GreedyNaive is the textbook implementation that rescans the whole
// family every round. It exists to validate Greedy (they must select
// identically under the same tie-breaking) and for the E10 ablation's
// timing comparison.
func GreedyNaive(n int, sets []Set) ([]Set, error) {
	covered := make([]bool, n)
	remaining := n
	var chosen []Set
	for remaining > 0 {
		best, bestUnc := -1, 0
		for i := range sets {
			unc := 0
			for _, v := range sets[i].Members {
				if !covered[v] {
					unc++
				}
			}
			if unc == 0 {
				continue
			}
			if best == -1 {
				best, bestUnc = i, unc
				continue
			}
			cand := ratioEntry{set: i, weight: sets[i].Weight, unc: unc}
			cur := ratioEntry{set: best, weight: sets[best].Weight, unc: bestUnc}
			if cand.less(cur) {
				best, bestUnc = i, unc
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("cover: family cannot cover %d remaining elements", remaining)
		}
		s := sets[best]
		chosen = append(chosen, Set{Members: append([]int(nil), s.Members...), Weight: s.Weight})
		for _, v := range s.Members {
			if !covered[v] {
				covered[v] = true
				remaining--
			}
		}
	}
	return chosen, nil
}

// Reduce converts a (k, ·)-cover into a disjoint partition without
// increasing the diameter sum, exactly as in §4.2.2: while some element
// v lies in two chosen sets, either remove v from the larger set (if one
// exceeds k) or replace both sets by their union (if both have size
// exactly k; the union has ≤ 2k−1 elements since v is shared).
//
// The returned partition's groups have size ≥ k but may exceed 2k−1 if
// the input sets did (the ball family produces such sets); callers
// needing a (k, 2k−1)-partition should follow with SplitOversize, which
// is the paper's §4.1 wlog.
func Reduce(n int, chosen []Set, k int) (*core.Partition, error) {
	return ReduceTraced(n, chosen, k, nil)
}

// ReduceTraced is Reduce with instrumentation under the given parent
// span: a "cover.reduce" span plus counters for the two §4.2.2 repair
// moves — element removals from oversize sets (cover.reduce_trims) and
// set merges (cover.reduce_merges).
func ReduceTraced(n int, chosen []Set, k int, sp *obs.Span) (*core.Partition, error) {
	rs := sp.Start("cover.reduce")
	defer rs.End()
	trims, merges := 0, 0
	defer func() {
		sp.Counter("cover.reduce_trims").Add(int64(trims))
		sp.Counter("cover.reduce_merges").Add(int64(merges))
	}()

	alive := make([]map[int]bool, len(chosen))
	for i, s := range chosen {
		m := make(map[int]bool, len(s.Members))
		for _, v := range s.Members {
			m[v] = true
		}
		alive[i] = m
	}
	// owners[v] lists the indices of alive sets containing v. Rebuilt
	// lazily via the work queue below.
	owners := make([][]int, n)
	for i, m := range alive {
		for v := range m {
			owners[v] = append(owners[v], i)
		}
	}
	dead := make([]bool, len(alive))

	// refresh drops dead or stale owner entries for v.
	refresh := func(v int) []int {
		out := owners[v][:0]
		for _, si := range owners[v] {
			if !dead[si] && alive[si][v] {
				out = append(out, si)
			}
		}
		owners[v] = out
		return out
	}

	for v := 0; v < n; v++ {
		for {
			os := refresh(v)
			if len(os) == 0 {
				return nil, fmt.Errorf("cover: element %d not covered", v)
			}
			if len(os) == 1 {
				break
			}
			si, sj := os[0], os[1]
			// Orient so that |alive[si]| ≥ |alive[sj]|.
			if len(alive[si]) < len(alive[sj]) {
				si, sj = sj, si
			}
			if len(alive[si]) > k {
				delete(alive[si], v)
				trims++
			} else {
				// Both have size exactly k (sizes never drop below k:
				// removal only happens above k). Merge into si.
				for w := range alive[sj] {
					if !alive[si][w] {
						alive[si][w] = true
						owners[w] = append(owners[w], si)
					}
				}
				dead[sj] = true
				merges++
			}
		}
	}

	p := &core.Partition{}
	for i, m := range alive {
		if dead[i] || len(m) == 0 {
			continue
		}
		g := make([]int, 0, len(m))
		for v := range m {
			g = append(g, v)
		}
		sort.Ints(g)
		p.Groups = append(p.Groups, g)
	}
	return p, nil
}

// DiameterSum sums true diameters of the chosen sets — the Phase 1
// objective value under actual diameters (weights may be upper bounds).
func DiameterSum(mat metric.Kernel, sets []Set) int {
	total := 0
	for _, s := range sets {
		total += mat.Diameter(s.Members)
	}
	return total
}

// WeightSum sums the declared weights of the chosen sets.
func WeightSum(sets []Set) int {
	total := 0
	for _, s := range sets {
		total += s.Weight
	}
	return total
}
