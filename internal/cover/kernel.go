package cover

import (
	"sort"
	"sync"

	"kanon/internal/metric"
)

// ballScratch is the per-worker reusable state of the per-center radius
// kernel: the distance row, the neighbor order, and the counting-sort
// buckets. Pooled so a family build allocates O(workers) scratch, not
// O(centers).
type ballScratch struct {
	dist []int32 // dist[v] = d(c, v) for the current center c
	ord  []int32 // 0..n−1 sorted by (dist, index)
	cnt  []int32 // counting-sort bucket heads
}

var scratchPool = sync.Pool{New: func() any { return &ballScratch{} }}

func getScratch(n int) *ballScratch {
	s := scratchPool.Get().(*ballScratch)
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.ord = make([]int32, n)
	}
	s.dist = s.dist[:n]
	s.ord = s.ord[:n]
	return s
}

func putScratch(s *ballScratch) { scratchPool.Put(s) }

// neighborOrder fills s.dist with center c's distance row and s.ord
// with 0..n−1 sorted by (distance, index) ascending — the order every
// ball of c is a prefix of.
//
// Distances are bucketed with a counting sort: the Hamming metric is
// bounded by the degree m, so each center costs O(n + m) instead of the
// O(n log n) a comparison sort pays. Metrics with large ranges (e.g.
// heavily weighted columns) fall back to the comparison sort rather
// than allocating giant bucket arrays; both paths produce the identical
// order.
func neighborOrder(mat metric.Kernel, c int, s *ballScratch) {
	n := mat.Len()
	maxd := 0
	if rf, ok := mat.(metric.RowFiller); ok {
		rf.DistRow(c, s.dist)
		for _, d := range s.dist {
			if int(d) > maxd {
				maxd = int(d)
			}
		}
	} else {
		for v := 0; v < n; v++ {
			d := mat.Dist(c, v)
			s.dist[v] = int32(d)
			if d > maxd {
				maxd = d
			}
		}
	}
	if maxd > countingSortCutoff(n) {
		for v := range s.ord {
			s.ord[v] = int32(v)
		}
		sort.Slice(s.ord, func(a, b int) bool {
			da, db := s.dist[s.ord[a]], s.dist[s.ord[b]]
			if da != db {
				return da < db
			}
			return s.ord[a] < s.ord[b]
		})
		return
	}
	if cap(s.cnt) < maxd+1 {
		s.cnt = make([]int32, maxd+1)
	}
	cnt := s.cnt[:maxd+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for v := 0; v < n; v++ {
		cnt[s.dist[v]]++
	}
	// Prefix sums turn counts into bucket write heads.
	head := int32(0)
	for d := 0; d <= maxd; d++ {
		c := cnt[d]
		cnt[d] = head
		head += c
	}
	// Scanning v ascending keeps ties in index order, matching the
	// comparison sort's tie-break exactly.
	for v := 0; v < n; v++ {
		d := s.dist[v]
		s.ord[cnt[d]] = int32(v)
		cnt[d]++
	}
}

// countingSortCutoff bounds the bucket array a counting sort may
// allocate relative to the element count; beyond it a comparison sort
// is cheaper in both memory and cache misses.
func countingSortCutoff(n int) int {
	return 8*n + 1024
}

// ballsForCenter emits the distinct balls S_{c,·} with at least k
// members, in growing-radius order — the per-center unit of work Balls
// shards across the worker pool.
//
// A ball's member list is materialized by one O(n) threshold scan of
// the distance row (already sorted by index), so no per-ball sort is
// needed. In WeightTrueDiameter mode the diameter is maintained
// incrementally while the prefix grows — extending by ord[e] costs at
// most an O(e) scan — so a center pays O(n²) total instead of
// recomputing Diameter from scratch per ball (O(Σ end²)). The scan is
// pruned by the triangle inequality: d(a, x) ≤ r_a + r_x, so members
// with r_a ≤ diam − r_x cannot raise the diameter, and the radii
// ascend along ord, so only a binary-searched suffix of the prefix is
// visited; once diam reaches the metric's bound the sweep stops
// entirely. Pruning never changes the computed diameters.
func ballsForCenter(mat metric.Kernel, k int, w BallWeight, c int, s *ballScratch) []Set {
	n := mat.Len()
	neighborOrder(mat, c, s)
	var sets []Set
	diam := 0
	dmax := mat.MaxDist()
	for end := 1; end <= n; end++ {
		if w == WeightTrueDiameter && end > 1 && diam < dmax {
			x := int(s.ord[end-1])
			lo := 0
			if thr := int32(diam) - s.dist[x]; thr >= 0 {
				lo = sort.Search(end-1, func(i int) bool { return s.dist[s.ord[i]] > thr })
			}
			for i := lo; i < end-1; i++ {
				if d := mat.Dist(int(s.ord[i]), x); d > diam {
					diam = d
					if diam >= dmax {
						break
					}
				}
			}
		}
		if end < k {
			continue
		}
		r := s.dist[s.ord[end-1]]
		if end < n && s.dist[s.ord[end]] == r {
			continue // not a boundary: same ball as a longer prefix
		}
		members := make([]int, 0, end)
		for v := 0; v < n; v++ {
			if s.dist[v] <= r {
				members = append(members, v)
			}
		}
		weight := 2 * int(r)
		if w == WeightTrueDiameter {
			weight = diam
		}
		sets = append(sets, Set{Members: members, Weight: weight})
	}
	return sets
}
