package cover

import (
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"kanon/internal/dataset"
	"kanon/internal/metric"
)

// benchMatrix builds the fixed-seed benchmark corpus once per size.
func benchMatrix(b *testing.B, n int) *metric.Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(20040614))
	tab := dataset.Census(rng, n, 8)
	return metric.NewMatrix(tab)
}

// BenchmarkBallsParallel compares the ball-family build sequentially
// (workers=1) and across all CPUs at the acceptance-criteria size
// (n = 2000); the outputs are byte-identical, so the delta is pure
// wall-clock.
func BenchmarkBallsParallel(b *testing.B) {
	for _, n := range []int{500, 2000} {
		mat := benchMatrix(b, n)
		b.Run("seq/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BallsParallel(mat, 3, WeightRadiusBound, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("par/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BallsParallel(mat, 3, WeightRadiusBound, runtime.NumCPU()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyBallsParallel measures the full Theorem 4.2 cover
// (neighbor-order build + greedy selection) at 1 worker vs all CPUs.
func BenchmarkGreedyBallsParallel(b *testing.B) {
	mat := benchMatrix(b, 2000)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GreedyBallsParallel(mat, 3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GreedyBallsParallel(mat, 3, runtime.NumCPU()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBallsKernel isolates the per-center radius kernel: the
// counting-sort kernel that ships vs the comparison-sort + per-ball
// re-sort loop it replaced (kept here as the before/after baseline).
func BenchmarkBallsKernel(b *testing.B) {
	mat := benchMatrix(b, 2000)
	b.Run("countingsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BallsParallel(mat, 3, WeightRadiusBound, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sortslice-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ballsSortRef(mat, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrueDiameterIncremental isolates the incremental-diameter
// kernel against the from-scratch Diameter recomputation it replaced.
// Quadratic per center, so a smaller corpus.
func BenchmarkTrueDiameterIncremental(b *testing.B) {
	mat := benchMatrix(b, 400)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BallsParallel(mat, 3, WeightTrueDiameter, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sets, err := BallsParallel(mat, 3, WeightRadiusBound, 1)
			if err != nil {
				b.Fatal(err)
			}
			for si := range sets {
				sets[si].Weight = mat.Diameter(sets[si].Members)
			}
		}
	})
}

// ballsSortRef is the pre-kernel Balls implementation — per-center
// sort.Slice plus a per-ball member copy and re-sort — retained only as
// the benchmark baseline for BenchmarkBallsKernel.
func ballsSortRef(mat *metric.Matrix, k int) ([]Set, error) {
	n := mat.Len()
	var sets []Set
	type dv struct{ d, v int }
	buf := make([]dv, n)
	for c := 0; c < n; c++ {
		for v := 0; v < n; v++ {
			buf[v] = dv{mat.Dist(c, v), v}
		}
		sort.Slice(buf, func(a, b int) bool {
			if buf[a].d != buf[b].d {
				return buf[a].d < buf[b].d
			}
			return buf[a].v < buf[b].v
		})
		for end := k; end <= n; end++ {
			if end < n && buf[end].d == buf[end-1].d {
				continue
			}
			members := make([]int, end)
			for i := 0; i < end; i++ {
				members[i] = buf[i].v
			}
			sort.Ints(members)
			sets = append(sets, Set{Members: members, Weight: 2 * buf[end-1].d})
		}
	}
	return sets, nil
}
