package cover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kanon/internal/metric"
	"kanon/internal/relation"
)

func randomTable(rng *rand.Rand, n, m, sigma int) *relation.Table {
	vecs := make([][]int, n)
	for i := range vecs {
		v := make([]int, m)
		for j := range v {
			v[j] = rng.Intn(sigma)
		}
		vecs[i] = v
	}
	return relation.MustFromVectors(vecs)
}

func validCover(n int, sets []Set) bool {
	covered := make([]bool, n)
	for _, s := range sets {
		for _, v := range s.Members {
			covered[v] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

func TestGreedySimple(t *testing.T) {
	// Element 0,1 cheap together; 2,3 cheap together; an expensive set
	// covering everything must lose.
	sets := []Set{
		{Members: []int{0, 1}, Weight: 1},
		{Members: []int{2, 3}, Weight: 1},
		{Members: []int{0, 1, 2, 3}, Weight: 100},
	}
	chosen, err := Greedy(4, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 || WeightSum(chosen) != 2 {
		t.Errorf("chosen %+v, want the two cheap sets", chosen)
	}
}

func TestGreedyPrefersRatio(t *testing.T) {
	// One weight-3 set covering 4 elements (ratio .75) beats two
	// weight-1 sets covering 1 each (ratio 1).
	sets := []Set{
		{Members: []int{0}, Weight: 1},
		{Members: []int{1}, Weight: 1},
		{Members: []int{0, 1, 2, 3}, Weight: 3},
	}
	chosen, err := Greedy(4, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0].Weight != 3 {
		t.Errorf("chosen %+v, want the ratio-optimal big set", chosen)
	}
}

func TestGreedyUncoverable(t *testing.T) {
	sets := []Set{{Members: []int{0, 1}, Weight: 1}}
	if _, err := Greedy(3, sets); err == nil {
		t.Error("Greedy covered element 2 with no candidate set")
	}
	if _, err := Greedy(1, nil); err == nil {
		t.Error("Greedy succeeded with empty family")
	}
}

func TestGreedyZeroWeightFirst(t *testing.T) {
	sets := []Set{
		{Members: []int{0, 1}, Weight: 5},
		{Members: []int{0, 1}, Weight: 0},
	}
	chosen, err := Greedy(2, sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0].Weight != 0 {
		t.Errorf("chosen %+v, want the free set", chosen)
	}
}

// TestLazyMatchesNaive: the lazy-heap greedy must pick exactly the same
// sets as the full-rescan implementation (identical tie-breaking).
func TestLazyMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		nsets := 1 + rng.Intn(30)
		sets := make([]Set, 0, nsets)
		cov := make([]bool, n)
		for s := 0; s < nsets; s++ {
			sz := 1 + rng.Intn(4)
			mem := rng.Perm(n)[:min(sz, n)]
			for _, v := range mem {
				cov[v] = true
			}
			sets = append(sets, Set{Members: mem, Weight: rng.Intn(6)})
		}
		for v, c := range cov {
			if !c {
				sets = append(sets, Set{Members: []int{v}, Weight: 3})
			}
		}
		a, errA := Greedy(n, sets)
		b, errB := GreedyNaive(n, sets)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Weight != b[i].Weight || len(a[i].Members) != len(b[i].Members) {
				return false
			}
			for j := range a[i].Members {
				if a[i].Members[j] != b[i].Members[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(rng, 7, 4, 2)
	mat := metric.NewMatrix(tab)
	sets, err := Exhaustive(mat, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// C(7,2) + C(7,3) = 21 + 35 = 56.
	if len(sets) != 56 {
		t.Fatalf("family size %d, want 56", len(sets))
	}
	for _, s := range sets {
		if len(s.Members) < 2 || len(s.Members) > 3 {
			t.Errorf("set size %d outside [2,3]", len(s.Members))
		}
		if got := mat.Diameter(s.Members); got != s.Weight {
			t.Errorf("set %v weight %d, want diameter %d", s.Members, s.Weight, got)
		}
	}
}

func TestExhaustiveFamilyCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := randomTable(rng, 30, 4, 2)
	mat := metric.NewMatrix(tab)
	if _, err := Exhaustive(mat, 3, 1000); err == nil {
		t.Error("Exhaustive ignored maxSets")
	}
	if _, err := Exhaustive(mat, 0, 0); err == nil {
		t.Error("Exhaustive accepted k=0")
	}
	small := randomTable(rng, 2, 3, 2)
	if _, err := Exhaustive(metric.NewMatrix(small), 3, 0); err == nil {
		t.Error("Exhaustive accepted n < k")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, s int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {4, 5, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.s); got != c.want {
			t.Errorf("binomial(%d,%d) = %v, want %v", c.n, c.s, got, c.want)
		}
	}
}

func TestBallsFamily(t *testing.T) {
	tab := relation.MustFromBitstrings("0000", "0001", "0011", "0111", "1111")
	mat := metric.NewMatrix(tab)
	sets, err := Balls(mat, 2, WeightRadiusBound)
	if err != nil {
		t.Fatal(err)
	}
	if !validCover(5, sets) {
		t.Error("ball family does not cover V")
	}
	for _, s := range sets {
		if len(s.Members) < 2 {
			t.Errorf("ball %v smaller than k", s.Members)
		}
		if d := mat.Diameter(s.Members); s.Weight < d {
			t.Errorf("radius-bound weight %d below true diameter %d for %v", s.Weight, d, s.Members)
		}
	}
	// Center 0 has distances 0,1,2,3,4: balls of sizes 2..5 → 4 distinct.
	count0 := 0
	for _, s := range sets {
		has0 := false
		for _, v := range s.Members {
			if v == 0 {
				has0 = true
			}
		}
		if has0 && s.Members[0] == 0 && len(s.Members) >= 2 {
			count0++
		}
	}
	if count0 == 0 {
		t.Error("no balls centered near row 0")
	}
}

func TestBallsDedupDuplicateRows(t *testing.T) {
	// All rows identical: each center yields exactly one ball (radius
	// 0, all rows) with weight 0.
	tab := relation.MustFromVectors([][]int{{1, 1}, {1, 1}, {1, 1}})
	mat := metric.NewMatrix(tab)
	sets, err := Balls(mat, 2, WeightRadiusBound)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("got %d balls, want 3 (one per center)", len(sets))
	}
	for _, s := range sets {
		if s.Weight != 0 || len(s.Members) != 3 {
			t.Errorf("ball %+v, want weight 0 size 3", s)
		}
	}
}

func TestBallsTrueDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab := randomTable(rng, 12, 5, 3)
	mat := metric.NewMatrix(tab)
	sets, err := Balls(mat, 3, WeightTrueDiameter)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		if got := mat.Diameter(s.Members); got != s.Weight {
			t.Errorf("true-diameter weight %d != diameter %d", s.Weight, got)
		}
	}
}

func TestBallsErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	mat := metric.NewMatrix(tab)
	if _, err := Balls(mat, 0, WeightRadiusBound); err == nil {
		t.Error("Balls accepted k=0")
	}
	if _, err := Balls(mat, 3, WeightRadiusBound); err == nil {
		t.Error("Balls accepted n < k")
	}
}

func TestReduceDisjointInputUnchanged(t *testing.T) {
	sets := []Set{
		{Members: []int{0, 1}, Weight: 1},
		{Members: []int{2, 3, 4}, Weight: 2},
	}
	p, err := Reduce(5, sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Normalize()
	if len(p.Groups) != 2 || len(p.Groups[0]) != 2 || len(p.Groups[1]) != 3 {
		t.Errorf("Reduce changed disjoint input: %v", p.Groups)
	}
}

func TestReduceRemovesFromLarger(t *testing.T) {
	// v=2 shared; the size-3 set is larger and exceeds k=2, so 2 is
	// removed from it.
	sets := []Set{
		{Members: []int{0, 1, 2}, Weight: 1},
		{Members: []int{2, 3}, Weight: 1},
	}
	p, err := Reduce(4, sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Normalize()
	if err := p.Validate(4, 2, 3); err != nil {
		t.Fatalf("invalid partition: %v (%v)", err, p.Groups)
	}
	// Expect {0,1} and {2,3}.
	if len(p.Groups) != 2 || len(p.Groups[0]) != 2 || p.Groups[1][0] != 2 {
		t.Errorf("groups = %v, want [[0 1] [2 3]]", p.Groups)
	}
}

func TestReduceMergesEqualK(t *testing.T) {
	// Both sets have size exactly k=2 and share v=1: they must merge
	// into one group of 3 ≤ 2k−1.
	sets := []Set{
		{Members: []int{0, 1}, Weight: 1},
		{Members: []int{1, 2}, Weight: 1},
	}
	p, err := Reduce(3, sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 1 || len(p.Groups[0]) != 3 {
		t.Errorf("groups = %v, want one merged group of 3", p.Groups)
	}
}

func TestReduceUncovered(t *testing.T) {
	sets := []Set{{Members: []int{0, 1}, Weight: 1}}
	if _, err := Reduce(3, sets, 2); err == nil {
		t.Error("Reduce accepted a non-cover")
	}
}

// TestReducePropertyValidAndCheaper: on random covers, Reduce yields a
// valid partition with groups ≥ k and diameter sum no larger than the
// cover's (the paper's Phase 2 guarantee).
func TestReducePropertyValidAndCheaper(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(2)
		n := 2*k + rng.Intn(12)
		tab := randomTable(rng, n, 4, 3)
		mat := metric.NewMatrix(tab)
		// Random cover: random ≥k-sets until covered.
		covered := make([]bool, n)
		cnt := 0
		var sets []Set
		for cnt < n {
			sz := k + rng.Intn(k)
			mem := rng.Perm(n)[:min(sz, n)]
			if len(mem) < k {
				continue
			}
			for _, v := range mem {
				if !covered[v] {
					covered[v] = true
					cnt++
				}
			}
			sets = append(sets, Set{Members: mem, Weight: mat.Diameter(mem)})
		}
		p, err := Reduce(n, sets, k)
		if err != nil {
			return false
		}
		if err := p.Validate(n, k, 0); err != nil {
			return false
		}
		before := 0
		for _, s := range sets {
			before += mat.Diameter(s.Members)
		}
		return p.DiameterSum(mat) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGreedyBallsMatchesMaterialized cross-checks the scalable implicit
// ball greedy against Greedy over the materialized ball family on fixed
// seeds (identical weights and near-identical tie-breaking).
func TestGreedyBallsMatchesMaterialized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		k := 2 + rng.Intn(2)
		tab := randomTable(rng, n, 5, 3)
		mat := metric.NewMatrix(tab)

		implicit, err := GreedyBalls(mat, k)
		if err != nil {
			t.Fatalf("seed %d: GreedyBalls: %v", seed, err)
		}
		family, err := Balls(mat, k, WeightRadiusBound)
		if err != nil {
			t.Fatalf("seed %d: Balls: %v", seed, err)
		}
		explicit, err := Greedy(n, family)
		if err != nil {
			t.Fatalf("seed %d: Greedy: %v", seed, err)
		}
		if !validCover(n, implicit) {
			t.Fatalf("seed %d: implicit result is not a cover", seed)
		}
		if got, want := WeightSum(implicit), WeightSum(explicit); got != want {
			t.Errorf("seed %d: implicit weight %d, explicit %d", seed, got, want)
		}
	}
}

func TestGreedyBallsErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	mat := metric.NewMatrix(tab)
	if _, err := GreedyBalls(mat, 0); err == nil {
		t.Error("GreedyBalls accepted k=0")
	}
	if _, err := GreedyBalls(mat, 5); err == nil {
		t.Error("GreedyBalls accepted n < k")
	}
}

func TestGreedyBallsCoversEverything(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		k := 2 + rng.Intn(3)
		if n < k {
			n = k
		}
		tab := randomTable(rng, n, 4, 2)
		mat := metric.NewMatrix(tab)
		chosen, err := GreedyBalls(mat, k)
		if err != nil {
			return false
		}
		for _, s := range chosen {
			if len(s.Members) < k {
				return false
			}
		}
		return validCover(n, chosen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiameterSumAndWeightSum(t *testing.T) {
	tab := relation.MustFromBitstrings("000", "001", "111")
	mat := metric.NewMatrix(tab)
	sets := []Set{
		{Members: []int{0, 1}, Weight: 9},
		{Members: []int{2}, Weight: 1},
	}
	if got := DiameterSum(mat, sets); got != 1 {
		t.Errorf("DiameterSum = %d, want 1", got)
	}
	if got := WeightSum(sets); got != 10 {
		t.Errorf("WeightSum = %d, want 10", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWitnessFamilyEqualsRadiusFamily substantiates the documented
// claim that the paper's two ball formulations — S_{c,i} over radii and
// S_{c,c'} over witness points — coincide after deduplication.
func TestWitnessFamilyEqualsRadiusFamily(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		k := 2 + rng.Intn(3)
		if n < k {
			n = k
		}
		tab := randomTable(rng, n, 4, 3)
		mat := metric.NewMatrix(tab)
		radius, err := Balls(mat, k, WeightRadiusBound)
		if err != nil {
			t.Fatal(err)
		}
		witness, err := BallsWitness(mat, k, WeightRadiusBound)
		if err != nil {
			t.Fatal(err)
		}
		key := func(s Set) string {
			b := make([]byte, 0, len(s.Members)*2+2)
			for _, v := range s.Members {
				b = append(b, byte(v), byte(v>>8))
			}
			b = append(b, byte(s.Weight), byte(s.Weight>>8))
			return string(b)
		}
		a := map[string]int{}
		for _, s := range radius {
			a[key(s)]++
		}
		b := map[string]int{}
		for _, s := range witness {
			b[key(s)]++
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d distinct radius sets vs %d witness sets", seed, len(a), len(b))
		}
		for k2, c := range a {
			if b[k2] != c {
				t.Fatalf("seed %d: multiplicity mismatch for a set", seed)
			}
		}
	}
}

func TestBallsWitnessErrors(t *testing.T) {
	tab := relation.MustFromVectors([][]int{{1}, {2}})
	mat := metric.NewMatrix(tab)
	if _, err := BallsWitness(mat, 0, WeightRadiusBound); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := BallsWitness(mat, 5, WeightRadiusBound); err == nil {
		t.Error("accepted n < k")
	}
}

// minCoverDiameterSum computes the exact minimum diameter sum of a
// cover of {0..n−1} drawn from the family, by DP over covered masks
// (sets may overlap — this is a cover, not a partition). Small n only;
// used to verify Lemma 4.3.
func minCoverDiameterSum(n int, family []Set, weightOf func(Set) int) int {
	size := 1 << uint(n)
	const inf = int(^uint(0) >> 1)
	dp := make([]int, size)
	for i := 1; i < size; i++ {
		dp[i] = inf
	}
	masks := make([]int, len(family))
	for si, s := range family {
		m := 0
		for _, v := range s.Members {
			m |= 1 << uint(v)
		}
		masks[si] = m
	}
	for mask := 1; mask < size; mask++ {
		low := mask & (-mask)
		for si, sm := range masks {
			if sm&low == 0 {
				continue
			}
			rest := mask &^ sm
			if dp[rest] == inf {
				continue
			}
			if c := dp[rest] + weightOf(family[si]); c < dp[mask] {
				dp[mask] = c
			}
		}
	}
	return dp[size-1]
}

// TestLemma43BallCoverWithinTwiceOptimal verifies Lemma 4.3: the best
// cover by balls (with true diameters) costs at most twice the best
// (k, 2k−1)-cover from the exhaustive family. The paper proves the
// bound via d(S_{c,d(T)}) ≤ 2·d(T) for any T containing c.
func TestLemma43BallCoverWithinTwiceOptimal(t *testing.T) {
	diam := func(s Set) int { return s.Weight }
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7)
		k := 2 + rng.Intn(2)
		if n < k {
			continue
		}
		tab := randomTable(rng, n, 3+rng.Intn(4), 2+rng.Intn(2))
		mat := metric.NewMatrix(tab)
		exFam, err := Exhaustive(mat, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		ballFam, err := Balls(mat, k, WeightTrueDiameter)
		if err != nil {
			t.Fatal(err)
		}
		optEx := minCoverDiameterSum(n, exFam, diam)
		optBall := minCoverDiameterSum(n, ballFam, diam)
		if optBall > 2*optEx {
			t.Errorf("seed %d (n=%d k=%d): ball cover optimum %d > 2× exhaustive optimum %d",
				seed, n, k, optBall, optEx)
		}
		// Note the families are incomparable: C holds every set of size
		// ≤ 2k−1, D holds balls of any size, so either optimum may win
		// (a single large cheap ball often beats any small-set cover).
		// Lemma 4.3 only bounds the ball side from above.
	}
}
