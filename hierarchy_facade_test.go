package kanon

import (
	"reflect"
	"strings"
	"testing"

	"kanon/internal/solver"
)

// TestAlgorithmRegistryConsistency pins the facade enum to the solver
// registry: every Algorithm resolves to a registered solver, every
// registered solver is reachable from the enum, and ParseAlgorithm
// round-trips. This is the test that fails when someone adds a solver
// family without wiring both sides.
func TestAlgorithmRegistryConsistency(t *testing.T) {
	names := AlgorithmNames()
	registered := map[string]bool{}
	for _, n := range names {
		registered[n] = true
	}
	for _, a := range algorithms() {
		name := a.String()
		if _, ok := solver.Lookup(name); !ok {
			t.Errorf("Algorithm %v (%q) has no registered solver", int(a), name)
		}
		if !registered[name] {
			t.Errorf("Algorithm %q missing from AlgorithmNames() %v", name, names)
		}
		got, err := ParseAlgorithm(name)
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, a)
		}
	}
	if len(names) != len(algorithms()) {
		t.Errorf("registry has %d solvers %v, enum has %d", len(names), names, len(algorithms()))
	}
	if _, err := ParseAlgorithm("nope"); err == nil || !strings.Contains(err.Error(), "hierarchy") {
		t.Errorf("unknown-algorithm error should list registered solvers, got %v", err)
	}
}

// TestAnonymizeHierarchy runs the full facade path with a derived
// spec: generalized labels, NCP reporting, and the suppression budget.
func TestAnonymizeHierarchy(t *testing.T) {
	header := []string{"city", "age"}
	rows := [][]string{
		{"oslo", "33"}, {"bergen", "38"}, {"oslo", "31"},
		{"paris", "47"}, {"paris", "45"}, {"paris", "51"},
	}
	res, err := Anonymize(header, rows, 3, &Options{Algorithm: AlgoHierarchy, MaxSuppress: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("release has %d rows, want %d", len(res.Rows), len(rows))
	}
	if len(res.Suppressed) > 1 {
		t.Fatalf("suppressed %v exceeds budget 1", res.Suppressed)
	}
	if res.NCP < 0 || res.NCP > 1 {
		t.Fatalf("NCP %g outside [0,1]", res.NCP)
	}
	// The facade recounts cost; cross-check the changed-cell objective.
	cost := 0
	for i := range rows {
		for j := range rows[i] {
			if res.Rows[i][j] != rows[i][j] {
				cost++
			}
		}
	}
	if cost != res.Cost || cost != res.WeightedCost {
		t.Fatalf("cost %d / weighted %d, recount %d", res.Cost, res.WeightedCost, cost)
	}
}

// TestAnonymizeHierarchyExplicitSpec pins released labels for a
// hand-written sidecar through ParseHierarchySpec.
func TestAnonymizeHierarchyExplicitSpec(t *testing.T) {
	spec, err := ParseHierarchySpec([]byte(`{
	  "columns": [
	    {"name": "city", "kind": "tree", "paths": {
	      "oslo":   ["norway", "europe"],
	      "bergen": ["norway", "europe"],
	      "paris":  ["france", "europe"]
	    }},
	    {"name": "age", "kind": "interval", "width": 10, "min": 0, "max": 79}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anonymize([]string{"city", "age"}, [][]string{
		{"oslo", "33"}, {"bergen", "38"}, {"paris", "47"}, {"paris", "45"},
	}, 2, &Options{Algorithm: AlgoHierarchy, Hierarchy: spec})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"norway", "30-39"}, {"norway", "30-39"},
		{"france", "40-49"}, {"france", "40-49"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("release = %v, want %v", res.Rows, want)
	}
	if !res.Optimal {
		t.Fatal("enumerable lattice should report Optimal")
	}
}

// TestAnonymizeHierarchyDeterministic: the facade's repo-wide contract
// — workers and tracing never change the release.
func TestAnonymizeHierarchyDeterministic(t *testing.T) {
	header := []string{"a", "b", "c"}
	var rows [][]string
	for i := 0; i < 40; i++ {
		rows = append(rows, []string{
			string(rune('p' + i%5)),
			string(rune('a' + (i*7)%4)),
			[]string{"10", "17", "24", "31", "38", "45"}[(i*3)%6],
		})
	}
	var base *Result
	for _, workers := range []int{1, 4} {
		for _, trace := range []bool{false, true} {
			res, err := Anonymize(header, rows, 3, &Options{
				Algorithm: AlgoHierarchy, MaxSuppress: 2, Workers: workers, Trace: trace,
			})
			if err != nil {
				t.Fatal(err)
			}
			if trace && res.Stats == nil {
				t.Fatal("Trace set but Stats nil")
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(res.Rows, base.Rows) || !reflect.DeepEqual(res.Groups, base.Groups) ||
				res.Cost != base.Cost || res.NCP != base.NCP ||
				!reflect.DeepEqual(res.Suppressed, base.Suppressed) {
				t.Fatalf("workers=%d trace=%v changed the release", workers, trace)
			}
		}
	}
}

// TestHierarchyOptionsRequireHierarchyAlgo: the guard that keeps
// hierarchy knobs from being silently ignored.
func TestHierarchyOptionsRequireHierarchyAlgo(t *testing.T) {
	spec, err := ParseHierarchySpec([]byte(`{"columns":[{"name":"a","kind":"suppress"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	header, rows := []string{"a"}, [][]string{{"x"}, {"y"}}
	if _, err := Anonymize(header, rows, 1, &Options{Algorithm: AlgoGreedyBall, Hierarchy: spec}); err == nil {
		t.Fatal("hierarchy spec accepted by AlgoGreedyBall")
	}
	if _, err := Anonymize(header, rows, 1, &Options{Algorithm: AlgoExact, MaxSuppress: 2}); err == nil {
		t.Fatal("suppression budget accepted by AlgoExact")
	}
}
