package kanon_test

// Telemetry determinism and the /metrics acceptance path: with every
// export surface enabled at once — external span, structured JSON log,
// progress instruments, Prometheus endpoint — the released table must
// stay byte-identical to the silent run, across worker counts. This is
// the contract the whole internal/obs layer promises ("telemetry
// observes, never steers"), exercised end-to-end through the facade
// and the streaming pipeline.

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"kanon"
	"kanon/internal/obs"
	"kanon/internal/relation"
	"kanon/internal/stream"
)

func TestTelemetryDeterminism(t *testing.T) {
	header, rows := genTable(240, 6, 7)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base, err := kanon.Anonymize(header, rows, 3, &kanon.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			// Everything on: external span under a live tracer, JSON
			// event log, and Trace (Span wins; Stats must stay nil).
			tr := obs.New()
			root := tr.Start("test")
			var logBuf bytes.Buffer
			full, err := kanon.Anonymize(header, rows, 3, &kanon.Options{
				Workers: workers,
				Trace:   true,
				Span:    root,
				Log:     slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})),
			})
			if err != nil {
				t.Fatal(err)
			}
			root.End()
			if !reflect.DeepEqual(base.Rows, full.Rows) {
				t.Error("released rows changed with telemetry on")
			}
			if base.Cost != full.Cost || !reflect.DeepEqual(base.Groups, full.Groups) {
				t.Error("cost or groups changed with telemetry on")
			}
			if full.Stats != nil {
				t.Error("Stats set although an external Span was given")
			}
			snap := tr.Snapshot()
			if snap.Counters["kanon.entries_suppressed"] != int64(full.Cost) {
				t.Errorf("external tracer missed the run: %+v", snap.Counters)
			}
			if len(snap.Histograms) == 0 {
				t.Error("no histograms recorded under the external span")
			}
			if !strings.Contains(logBuf.String(), `"msg":"run_start"`) ||
				!strings.Contains(logBuf.String(), `"msg":"run_done"`) {
				t.Errorf("event log missing run boundary events:\n%s", logBuf.String())
			}
			if !strings.Contains(logBuf.String(), `"run_id"`) {
				t.Error("event log records carry no run_id")
			}
		})
	}
}

// TestStreamTelemetryDeterminism covers the worker-pool path: block
// histograms, progress, and worker lifecycle events must not perturb
// the streamed release.
func TestStreamTelemetryDeterminism(t *testing.T) {
	tbl := genStreamTable(t, 300, 4, 11)
	base, err := stream.Anonymize(tbl, 3, &stream.Options{BlockRows: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tr := obs.New()
		root := tr.Start("run")
		var logBuf bytes.Buffer
		ev := obs.NewEvents(slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})), "strm")
		res, err := stream.Anonymize(tbl, 3, &stream.Options{
			BlockRows: 64, Workers: workers, Trace: root, Log: ev,
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		if res.Cost != base.Cost {
			t.Errorf("workers=%d: cost %d != base %d with telemetry on", workers, res.Cost, base.Cost)
		}
		for i := 0; i < base.Anonymized.Len(); i++ {
			if !reflect.DeepEqual(base.Anonymized.Strings(i), res.Anonymized.Strings(i)) {
				t.Fatalf("workers=%d: row %d differs with telemetry on", workers, i)
			}
		}
		snap := tr.Snapshot()
		h, ok := snap.Histograms["stream.block_ns"]
		if !ok || h.Count != int64(res.Blocks) {
			t.Errorf("workers=%d: block_ns histogram has %d observations, want %d", workers, h.Count, res.Blocks)
		}
		p, ok := snap.Progress["stream.blocks"]
		if !ok || p.Done != int64(res.Blocks) || p.Total != int64(res.Blocks) {
			t.Errorf("workers=%d: progress = %+v, want %d/%d", workers, p, res.Blocks, res.Blocks)
		}
		if workers > 1 && !strings.Contains(logBuf.String(), `"msg":"worker_start"`) {
			t.Errorf("workers=%d: no worker lifecycle events:\n%s", workers, logBuf.String())
		}
	}
}

// TestMetricsFromRealRun is the acceptance test for the /metrics
// endpoint: a real streamed Anonymize under a live tracer must surface
// at least one populated counter, gauge, and histogram family in valid
// exposition format.
func TestMetricsFromRealRun(t *testing.T) {
	tbl := genStreamTable(t, 300, 4, 13)
	tr := obs.New()
	root := tr.Start("run")
	if _, err := stream.Anonymize(tbl, 3, &stream.Options{BlockRows: 64, Workers: 2, Trace: root}); err != nil {
		t.Fatal(err)
	}
	root.End()

	srv := httptest.NewServer(obs.DebugMux(tr.Snapshot))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.LintPrometheus(body); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	text := string(body)
	// One populated family of each kind, from the real run.
	for _, want := range []string{
		"# TYPE kanon_stream_blocks_done_total counter",
		"# TYPE kanon_stream_workers gauge",
		"kanon_stream_workers 2",
		"# TYPE kanon_stream_block_ns histogram",
		`le="+Inf"`,
		`kanon_progress_done{task="stream.blocks"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The counter and histogram are populated, not just declared.
	if strings.Contains(text, "kanon_stream_blocks_done_total 0\n") {
		t.Error("blocks_done counter unpopulated")
	}
	if strings.Contains(text, "kanon_stream_block_ns_count 0\n") {
		t.Error("block_ns histogram unpopulated")
	}
}

// genStreamTable builds a deterministic relation.Table for the stream
// tests (the stream API takes tables, not string rows).
func genStreamTable(t *testing.T, n, m int, seed int64) *relation.Table {
	t.Helper()
	header, rows := genTable(n, m, seed)
	tbl := relation.NewTable(relation.NewSchema(header...))
	for i, r := range rows {
		if err := tbl.AppendStrings(r...); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	return tbl
}
