module kanon

go 1.22
