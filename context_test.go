package kanon_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"kanon"
)

// distinctRows builds n pairwise-distinct rows over m columns — the
// worst case for every algorithm, so runs are slow enough to cancel
// mid-flight.
func distinctRows(n, m int) ([]string, [][]string) {
	header := make([]string, m)
	for j := range header {
		header[j] = fmt.Sprintf("c%d", j)
	}
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = make([]string, m)
		for j := range rows[i] {
			rows[i][j] = fmt.Sprintf("v%d_%d", i*(j+2), j)
		}
	}
	return header, rows
}

// settleGoroutines waits for the goroutine count to drop back to at
// most base+slack, returning the final count.
func settleGoroutines(base, slack int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestAnonymizeContextCancellation pins the cancellation contract of
// the public API: cancelling mid-run makes AnonymizeContext return an
// error wrapping context.Canceled promptly — well under the seconds the
// uncancelled solve would take — and leaks no goroutines.
func TestAnonymizeContextCancellation(t *testing.T) {
	cases := []struct {
		name string
		n, m int
		opts kanon.Options
	}{
		// 22 distinct rows drive the exact solver's 2^22-mask DP —
		// seconds of work, polled every 4096 masks.
		{"exact", 22, 4, kanon.Options{Algorithm: kanon.AlgoExact}},
		// 6000 distinct rows make greedy ball's O(n^2)-per-center radius
		// kernel the dominant cost (~1s uncancelled), polled per center
		// and per round.
		{"ball", 6000, 6, kanon.Options{Algorithm: kanon.AlgoGreedyBall}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			header, rows := distinctRows(tc.n, tc.m)
			base := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(50*time.Millisecond, cancel)
			defer timer.Stop()
			defer cancel()

			start := time.Now()
			opts := tc.opts
			_, err := kanon.AnonymizeContext(ctx, header, rows, 2, &opts)
			elapsed := time.Since(start)

			if err == nil {
				// The machine outran the cancel timer; that is not a
				// cancellation failure, but it means this instance is
				// too small to exercise the path.
				t.Skipf("solve finished in %v before the 50ms cancel", elapsed)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled in its chain", err)
			}
			if elapsed > 2*time.Second {
				t.Errorf("cancellation took %v, want < 2s", elapsed)
			}
			if got := settleGoroutines(base, 2, time.Second); got > base+2 {
				t.Errorf("goroutines did not settle: %d before, %d after", base, got)
			}
		})
	}
}

// TestAnonymizeContextDeadline pins the sibling path: an expired
// deadline surfaces as context.DeadlineExceeded.
func TestAnonymizeContextDeadline(t *testing.T) {
	header, rows := distinctRows(22, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := kanon.AnonymizeContext(ctx, header, rows, 2, &kanon.Options{Algorithm: kanon.AlgoExact})
	if err == nil {
		t.Skip("solve beat a 30ms deadline; instance too small here")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in its chain", err)
	}
}

// TestAnonymizeContextNilAndBackground pins that a nil or background
// context changes nothing: output matches plain Anonymize byte for
// byte.
func TestAnonymizeContextNilAndBackground(t *testing.T) {
	header, rows := distinctRows(12, 3)
	want, err := kanon.Anonymize(header, rows, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		got, err := kanon.AnonymizeContext(ctx, header, rows, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Cost != want.Cost || len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: result diverged: cost %d vs %d", name, got.Cost, want.Cost)
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != want.Rows[i][j] {
					t.Fatalf("%s: cell (%d,%d) = %q, want %q", name, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
	}
}
