package kanon

// Integration tests: cross-module invariants exercised through the
// public facade on larger fixed-seed corpora, plus consistency checks
// between independent implementations (exact DP vs branch-and-bound,
// suppression vs generalization with trivial hierarchies, algorithm
// outputs vs verifier).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/core"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/generalize"
	"kanon/internal/lattice"
	"kanon/internal/quality"
	"kanon/internal/refine"
	"kanon/internal/relation"
)

// corpusTables builds the shared integration corpus.
func corpusTables(seed int64) map[string]*relation.Table {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*relation.Table{
		"census":  dataset.Census(rng, 80, 7),
		"zipf":    dataset.Zipf(rng, 70, 6, 8, 1.6),
		"planted": dataset.Planted(rng, 60, 6, 4, 3, 1),
		"uniform": dataset.Uniform(rng, 50, 5, 3),
	}
}

func toStrings(t *relation.Table) ([]string, [][]string) {
	header := t.Schema().Names()
	rows := make([][]string, t.Len())
	for i := range rows {
		rows[i] = t.Strings(i)
	}
	return header, rows
}

// TestIntegrationEveryAlgorithmOnEveryWorkload runs the full algorithm
// matrix through the facade and checks the universal invariants: valid
// k-anonymity, cost accounting, group structure, input immutability.
func TestIntegrationEveryAlgorithmOnEveryWorkload(t *testing.T) {
	for name, tab := range corpusTables(11) {
		header, rows := toStrings(tab)
		for _, alg := range []Algorithm{
			AlgoGreedyBall, AlgoPattern, AlgoKMember, AlgoMondrian, AlgoSorted, AlgoRandom,
		} {
			for _, k := range []int{2, 5} {
				t.Run(fmt.Sprintf("%s/%s/k=%d", name, alg, k), func(t *testing.T) {
					res, err := Anonymize(header, rows, k, &Options{Algorithm: alg})
					if err != nil {
						t.Fatal(err)
					}
					ok, err := Verify(res.Header, res.Rows, k)
					if err != nil || !ok {
						t.Fatalf("not %d-anonymous (err=%v)", k, err)
					}
					if Cost(res.Rows) != res.Cost {
						t.Errorf("cost mismatch: %d vs %d", Cost(res.Rows), res.Cost)
					}
					covered := 0
					for _, g := range res.Groups {
						if len(g) < k {
							t.Errorf("group %v below k", g)
						}
						covered += len(g)
					}
					if covered != len(rows) {
						t.Errorf("groups cover %d of %d rows", covered, len(rows))
					}
				})
			}
		}
	}
}

// TestIntegrationExactConsistency: on DP-sized prefixes of each
// workload, the DP, branch-and-bound, and every approximation agree on
// the ordering exact ≤ approx, and the two exact solvers agree with
// each other.
func TestIntegrationExactConsistency(t *testing.T) {
	for name, tab := range corpusTables(13) {
		sub := tab.SubTable([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
		for _, k := range []int{2, 3} {
			dp, err := exact.Solve(sub, k, exact.Stars)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := exact.BranchBound(sub, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if dp.Value != bb.Value {
				t.Errorf("%s k=%d: DP %d != B&B %d", name, k, dp.Value, bb.Value)
			}
			if lb := exact.LowerBoundNN(sub, k); lb > dp.Value {
				t.Errorf("%s k=%d: NN bound %d > OPT %d", name, k, lb, dp.Value)
			}
			header, rows := toStrings(sub)
			for _, alg := range []Algorithm{AlgoGreedyBall, AlgoGreedyExhaustive, AlgoPattern} {
				res, err := Anonymize(header, rows, k, &Options{Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if res.Cost < dp.Value {
					t.Errorf("%s/%s k=%d: approx %d below OPT %d", name, alg, k, res.Cost, dp.Value)
				}
			}
		}
	}
}

// TestIntegrationRefineChain: greedy → refine ≥ OPT and ≤ greedy, with
// quality metrics consistent at each step.
func TestIntegrationRefineChain(t *testing.T) {
	for name, tab := range corpusTables(17) {
		r, err := algo.GreedyBall(tab, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		before := r.Cost
		st, err := refine.Partition(tab, r.Partition, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.CostAfter > before {
			t.Errorf("%s: refine worsened %d → %d", name, before, st.CostAfter)
		}
		sup := r.Partition.Suppressor(tab)
		anon := sup.Apply(tab)
		rep, err := quality.Measure(anon, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stars != st.CostAfter {
			t.Errorf("%s: quality stars %d != refined cost %d", name, rep.Stars, st.CostAfter)
		}
		if rep.MinGroup < 3 {
			t.Errorf("%s: refined release min group %d", name, rep.MinGroup)
		}
	}
}

// TestIntegrationGeneralizeDegeneratesToSuppression: with two-level
// hierarchies, generalization over a fixed partition costs exactly the
// partition's star count, tying the two models together end to end.
func TestIntegrationGeneralizeDegeneratesToSuppression(t *testing.T) {
	tab := corpusTables(19)["uniform"]
	r, err := algo.GreedyBall(tab, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := generalize.Apply(tab, r.Partition, generalize.ForTable(tab), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cost != r.Cost {
		t.Errorf("generalization cost %d != suppression cost %d", g.Cost, r.Cost)
	}
	for i, row := range g.Rows {
		anon := r.Anonymized.Strings(i)
		if strings.Join(row, "|") != strings.Join(anon, "|") {
			t.Errorf("row %d: generalize %v vs suppress %v", i, row, anon)
		}
	}
}

// TestIntegrationLatticeVsCellSuppression: the full-domain lattice
// release is always at least as costly (in stars) as the paper's
// cell-level suppression on the same table — the refinement the paper's
// model buys.
func TestIntegrationLatticeVsCellSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := dataset.Uniform(rng, 20, 4, 3)
	k := 2

	node, _, err := lattice.Search(tab, generalize.ForTable(tab), k, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With suppression-only hierarchies, a lattice node stars whole
	// columns: cost = n × (levels summed over starred columns).
	latticeStars := tab.Len() * node.Height

	r, err := algo.GreedyBall(tab, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost > latticeStars {
		t.Errorf("cell suppression %d stars > full-domain %d stars", r.Cost, latticeStars)
	}

	// And the exact cell optimum is at most the best attribute-level
	// solution by definition.
	opt, err := exact.OPT(tab, k)
	if err != nil {
		t.Fatal(err)
	}
	if opt > latticeStars {
		t.Errorf("OPT %d > full-domain %d", opt, latticeStars)
	}
}

// TestIntegrationPartitionInterchange: partitions produced by any
// algorithm can be re-costed, refined, generalized, and suppressed
// interchangeably without invariant violations.
func TestIntegrationPartitionInterchange(t *testing.T) {
	tab := corpusTables(29)["census"]
	k := 4
	produce := map[string]func() (*core.Partition, error){
		"ball": func() (*core.Partition, error) {
			r, err := algo.GreedyBall(tab, k, nil)
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		},
		"ball-sorted-split": func() (*core.Partition, error) {
			r, err := algo.GreedyBall(tab, k, &algo.Options{SplitSorted: true})
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		},
	}
	for name, f := range produce {
		p, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(tab.Len(), k, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		costA := p.Cost(tab)
		sup := p.Suppressor(tab)
		if sup.Stars() != costA {
			t.Errorf("%s: suppressor stars %d != partition cost %d", name, sup.Stars(), costA)
		}
		if _, err := refine.Partition(tab, p, k, &refine.Options{MaxRounds: 2}); err != nil {
			t.Errorf("%s: refine: %v", name, err)
		}
		if p.Cost(tab) > costA {
			t.Errorf("%s: refine increased cost", name)
		}
	}
}
