package kanon

// One benchmark per reproduction experiment (see DESIGN.md's experiment
// index and EXPERIMENTS.md for recorded results). Each BenchmarkEi
// exercises the code path of experiment Ei at a representative size, so
// `go test -bench=. -benchmem` regenerates the performance half of the
// study; cmd/kanon-bench regenerates the quality tables.

import (
	"math/rand"
	"testing"

	"kanon/internal/algo"
	"kanon/internal/attribute"
	"kanon/internal/baseline"
	"kanon/internal/cover"
	"kanon/internal/dataset"
	"kanon/internal/exact"
	"kanon/internal/generalize"
	"kanon/internal/hypergraph"
	"kanon/internal/metric"
	"kanon/internal/pattern"
	"kanon/internal/reduction"
	"kanon/internal/relation"
)

// benchTable memoizes workload construction outside the timed loop.
func benchTable(b *testing.B, n, m int) *relation.Table {
	b.Helper()
	return dataset.Census(rand.New(rand.NewSource(1)), n, m)
}

// BenchmarkE1GreedyExhaustive times Theorem 4.1's algorithm at the
// exact-comparable scale of experiment E1.
func BenchmarkE1GreedyExhaustive(b *testing.B) {
	for _, k := range []int{2, 3} {
		tab := benchTable(b, 14, 8)
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.GreedyExhaustive(tab, k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2GreedyBall times Theorem 4.2's algorithm at E2 scale.
func BenchmarkE2GreedyBall(b *testing.B) {
	for _, k := range []int{2, 3} {
		tab := benchTable(b, 14, 8)
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.GreedyBall(tab, k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Scaling is the E3 runtime-scaling series: the ball greedy
// at growing n (the exhaustive side's wall is demonstrated by
// BenchmarkE1 at k=3 already; past n ≈ 40 it is infeasible).
func BenchmarkE3Scaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		tab := benchTable(b, n, 8)
		b.Run("ball/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.GreedyBall(tab, 3, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{20, 40} {
		tab := benchTable(b, n, 8)
		b.Run("exhaustive/k=2/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.GreedyExhaustive(tab, 2, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4Theorem31 times the full E4 pipeline: generate graph →
// reduce → exact OPT → extract witness.
func BenchmarkE4Theorem31(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := hypergraph.RandomWithPlantedMatching(rng, 9, 3, 8)
	inst, err := reduction.FromMatchingEntry(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exact.Solve(inst.Table, 3, exact.Stars)
		if err != nil {
			b.Fatal(err)
		}
		if r.Value <= inst.Threshold {
			if _, err := inst.MatchingFromPartition(r.Partition); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE5Theorem32 times the attribute-variant pipeline.
func BenchmarkE5Theorem32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := hypergraph.RandomWithPlantedMatching(rng, 9, 3, 8)
	inst, err := reduction.FromMatchingAttribute(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attribute.Exact(inst.Table, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Lemma41 times the double-exact (stars + diameter sum)
// solve that E6's sandwich check needs.
func BenchmarkE6Lemma41(b *testing.B) {
	tab := dataset.Uniform(rand.New(rand.NewSource(4)), 12, 6, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Solve(tab, 3, exact.Stars); err != nil {
			b.Fatal(err)
		}
		if _, err := exact.Solve(tab, 3, exact.DiameterSum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7PaperExamples times the §1 hospital generalization and the
// §4 suppression example.
func BenchmarkE7PaperExamples(b *testing.B) {
	tab := relation.NewTable(relation.NewSchema("first", "last", "age", "race"))
	for _, r := range [][]string{
		{"Harry", "Stone", "34", "Afr-Am"},
		{"John", "Reyser", "36", "Cauc"},
		{"Beatrice", "Stone", "47", "Afr-Am"},
		{"John", "Ramos", "22", "Hisp"},
	} {
		if err := tab.AppendStrings(r...); err != nil {
			b.Fatal(err)
		}
	}
	scheme := generalize.ForTable(tab)
	example := relation.MustFromBitstrings("1010", "1110", "0110")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.Anonymize(tab, 2, scheme); err != nil {
			b.Fatal(err)
		}
		if _, err := algo.GreedyBall(example, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Baselines times every algorithm of the E8 comparison on
// one census workload.
func BenchmarkE8Baselines(b *testing.B) {
	tab := benchTable(b, 300, 8)
	const k = 5
	b.Run("ball", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.GreedyBall(tab, k, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kmember", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.KMember(tab, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mondrian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Mondrian(tab, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SortedChunks(tab, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pattern", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pattern.Anonymize(tab, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columns", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SuppressColumns(tab, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9DiameterProps times the geometric primitives the E9
// property checks exercise: matrix construction, balls, diameters.
func BenchmarkE9DiameterProps(b *testing.B) {
	tab := benchTable(b, 200, 8)
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			metric.NewMatrix(tab)
		}
	})
	mat := metric.NewMatrix(tab)
	group := make([]int, 30)
	for i := range group {
		group[i] = i * 6
	}
	b.Run("diameter30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.Diameter(group)
		}
	})
	b.Run("ball", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.Ball(i%tab.Len(), 4)
		}
	})
}

// BenchmarkE10Ablations times the ablation's competing configurations.
func BenchmarkE10Ablations(b *testing.B) {
	tab := benchTable(b, 120, 6)
	const k = 3
	b.Run("split=arbitrary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.GreedyBall(tab, k, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("split=similarity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.GreedyBall(tab, k, &algo.Options{SplitSorted: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weights=truediameter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.GreedyBall(tab, k, &algo.Options{TrueDiameterWeights: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	mat := metric.NewMatrix(tab)
	sets, err := cover.Balls(mat, k, cover.WeightRadiusBound)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy=lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cover.Greedy(tab.Len(), sets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy=naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cover.GreedyNaive(tab.Len(), sets); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI times the facade end to end, the number a
// downstream adopter cares about.
func BenchmarkPublicAPI(b *testing.B) {
	tab := benchTable(b, 200, 8)
	header := tab.Schema().Names()
	rows := make([][]string, tab.Len())
	for i := range rows {
		rows[i] = tab.Strings(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(header, rows, 5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
