// Package kanon is a from-scratch reproduction of Meyerson & Williams,
// "On the Complexity of Optimal K-Anonymity" (PODS 2004): optimal
// k-anonymization of relations by entry suppression, its NP-hardness
// apparatus, and the paper's greedy approximation algorithms.
//
// The package is the stable public facade. It accepts plain string
// tables (a header plus rows), runs a selectable algorithm, and returns
// the k-anonymized rows with suppressed entries replaced by "*":
//
//	res, err := kanon.Anonymize(header, rows, 3, nil)
//
// Algorithms:
//
//   - AlgoGreedyBall (default): the strongly polynomial 6k(1+ln m)
//     approximation of Theorem 4.2. Scales to thousands of rows.
//   - AlgoGreedyExhaustive: the 3k(1+ln k) approximation of Theorem 4.1.
//     Enumerates all O(n^{2k−1}) candidate groups; small n only.
//   - AlgoPattern: projection-pattern set cover (exact candidate costs;
//     exponential in the number of columns, m ≤ 20).
//   - AlgoExact: provably optimal via bitmask DP; n ≤ 24.
//   - AlgoKMember, AlgoMondrian, AlgoSorted, AlgoRandom: baseline
//     heuristics used by the benchmark suite.
//
// Everything below the facade lives in internal/ packages — the §2
// problem definitions (internal/core), the greedy cover machinery
// (internal/cover), exact solvers (internal/exact), the §3 hardness
// reductions (internal/reduction, internal/hypergraph), baselines,
// workload generators, and the generalization-hierarchy extension.
// See DESIGN.md for the full inventory and EXPERIMENTS.md for the
// reproduction results.
package kanon

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"kanon/internal/core"
	"kanon/internal/exact"
	"kanon/internal/hierarchy"
	"kanon/internal/metric"
	"kanon/internal/obs"
	"kanon/internal/refine"
	"kanon/internal/relation"
	"kanon/internal/solver"

	// The solver families register themselves with internal/solver at
	// init; the facade dispatches by name and never links them directly.
	_ "kanon/internal/algo"
	_ "kanon/internal/baseline"
	_ "kanon/internal/pattern"
)

// Stats is a structured trace of one Anonymize call: a tree of phase
// spans (wall time per phase, monotonic clock) plus named counters and
// gauges from the instrumented hot paths. It serializes to stable JSON
// via encoding/json and renders as a phase tree via WriteTree. Collected
// only when Options.Trace is set; collection never changes the
// anonymization result.
type Stats = obs.Snapshot

// Star is the string that replaces suppressed entries in results.
const Star = relation.StarString

// Algorithm selects the anonymization strategy.
type Algorithm int

const (
	// AlgoGreedyBall is Theorem 4.2's strongly polynomial greedy.
	AlgoGreedyBall Algorithm = iota
	// AlgoGreedyExhaustive is Theorem 4.1's greedy over all small subsets.
	AlgoGreedyExhaustive
	// AlgoPattern is the projection-pattern cover for low-degree tables.
	AlgoPattern
	// AlgoExact is the optimal bitmask DP (n ≤ 24).
	AlgoExact
	// AlgoKMember is the greedy clustering baseline.
	AlgoKMember
	// AlgoMondrian is the median-split partitioning baseline.
	AlgoMondrian
	// AlgoSorted is the lexicographic-chunks baseline.
	AlgoSorted
	// AlgoRandom is the shuffled-chunks baseline.
	AlgoRandom
	// AlgoHierarchy is full-domain generalization: every column is
	// coarsened uniformly to one level of a per-attribute hierarchy
	// (Options.Hierarchy, or one derived from the data), searching the
	// generalization lattice for the minimum-NCP k-anonymous cut with
	// up to Options.MaxSuppress rows suppressed as outliers.
	AlgoHierarchy
)

// algorithms lists every Algorithm enum value, in declaration order.
func algorithms() []Algorithm {
	return []Algorithm{
		AlgoGreedyBall, AlgoGreedyExhaustive, AlgoPattern, AlgoExact,
		AlgoKMember, AlgoMondrian, AlgoSorted, AlgoRandom, AlgoHierarchy,
	}
}

// String returns the algorithm's short name (as accepted by the CLI).
func (a Algorithm) String() string {
	switch a {
	case AlgoGreedyBall:
		return "ball"
	case AlgoGreedyExhaustive:
		return "exhaustive"
	case AlgoPattern:
		return "pattern"
	case AlgoExact:
		return "exact"
	case AlgoKMember:
		return "kmember"
	case AlgoMondrian:
		return "mondrian"
	case AlgoSorted:
		return "sorted"
	case AlgoRandom:
		return "random"
	case AlgoHierarchy:
		return "hierarchy"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a short name back to an Algorithm. The error for
// an unknown name lists every registered solver.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range algorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("kanon: %w", solver.ErrUnknown(name))
}

// AlgorithmNames returns every registered solver name, sorted — the
// single source of truth for CLI usage strings and API error messages.
func AlgorithmNames() []string {
	return solver.Names()
}

// Kernel selects the distance-kernel backend of the metric-driven
// algorithms. Every backend returns identical distances, so the
// anonymized output is byte-identical across kernels — the choice only
// trades time against memory.
type Kernel int

const (
	// KernelAuto (the default) picks KernelDense for small tables and
	// KernelBitset above the internal size threshold.
	KernelAuto Kernel = iota
	// KernelDense precomputes the O(n²) distance matrix: fastest
	// lookups, quadratic memory.
	KernelDense
	// KernelBitset computes distances on the fly from bit-packed rows
	// via popcount: O(n·m/64) memory, scales to hundreds of thousands
	// of rows.
	KernelBitset
)

// String returns the kernel's short name (as accepted by the CLI).
func (k Kernel) String() string { return k.choice().String() }

// ParseKernel maps a short name ("auto", "dense", "bitset") back to a
// Kernel.
func ParseKernel(name string) (Kernel, error) {
	c, err := metric.ParseChoice(name)
	if err != nil {
		return 0, fmt.Errorf("kanon: unknown kernel %q", name)
	}
	switch c {
	case metric.Dense:
		return KernelDense, nil
	case metric.Bitset:
		return KernelBitset, nil
	}
	return KernelAuto, nil
}

// choice maps the public enum to the internal metric choice.
func (k Kernel) choice() metric.Choice {
	switch k {
	case KernelDense:
		return metric.Dense
	case KernelBitset:
		return metric.Bitset
	}
	return metric.Auto
}

// HierarchySpec declares per-column generalization hierarchies for
// AlgoHierarchy: explicit value trees, integer intervals, or plain
// suppression, matched to the table by column name. Parse one from a
// JSON/CSV sidecar with ParseHierarchySpec.
type HierarchySpec = hierarchy.Spec

// ParseHierarchySpec decodes and validates a hierarchy sidecar: JSON
// (first non-space byte '{') or CSV records of column,leaf,levels…
func ParseHierarchySpec(b []byte) (*HierarchySpec, error) {
	return hierarchy.ParseSpec(b)
}

// Options tunes Anonymize. The zero value selects AlgoGreedyBall with
// paper-faithful settings.
type Options struct {
	// Algorithm selects the strategy; default AlgoGreedyBall.
	Algorithm Algorithm
	// Kernel selects the distance-kernel backend of the metric-driven
	// algorithms (AlgoGreedyBall, AlgoGreedyExhaustive); KernelAuto
	// (the default) sizes the choice to the table. Algorithms that do
	// not consult the metric, and the weighted-ball path (whose metric
	// is dense by construction), ignore it. Output is byte-identical
	// for every kernel.
	Kernel Kernel
	// Seed feeds AlgoRandom's shuffle (ignored elsewhere).
	Seed int64
	// SplitSorted uses the similarity-aware oversize-group split in the
	// greedy algorithms instead of the paper's arbitrary split.
	SplitSorted bool
	// TrueDiameterWeights makes AlgoGreedyBall weight candidate balls
	// by exact diameter instead of the 2·radius bound.
	TrueDiameterWeights bool
	// Refine post-optimizes the partition with cost-direct local search
	// (relocate/swap/dissolve moves). Never increases cost and never
	// breaks k-anonymity; any approximation guarantee of the base
	// algorithm survives. Ignored by AlgoExact, whose output cannot
	// improve.
	Refine bool
	// RefineOpts tunes the Refine local search (rounds cap, move set);
	// nil runs the defaults. The call's context is threaded into the
	// search regardless, so a cancelled run aborts mid-refine too.
	RefineOpts *refine.Options
	// ColumnWeights prices each column's suppressed entries (nil means
	// all 1, the paper's objective). Honored by AlgoGreedyBall (the
	// weighted metric drives grouping) and AlgoExact (the DP minimizes
	// the weighted objective); other algorithms ignore weights but the
	// Result still reports the weighted cost.
	ColumnWeights []int
	// Workers bounds the parallelism of the greedy algorithms' hot
	// paths (distance matrix fill, ball-family construction) and the
	// hierarchy lattice search: 0 means all CPUs, 1 forces the
	// sequential path. Output is identical for every worker count;
	// other algorithms ignore it.
	Workers int
	// Hierarchy declares the generalization hierarchies AlgoHierarchy
	// searches over; nil derives a spec from the data (intervals for
	// integer columns, balanced value trees otherwise). Setting it with
	// any other algorithm is an error.
	Hierarchy *HierarchySpec
	// MaxSuppress is AlgoHierarchy's row-suppression budget: up to this
	// many outlier rows may be released fully starred instead of
	// forcing every column to a coarser level. Setting it with any
	// other algorithm is an error.
	MaxSuppress int
	// Trace collects phase timings and counters into Result.Stats.
	// Off (the default) the instrumentation costs one nil check per
	// phase; on, the anonymized output is byte-identical — tracing
	// observes the run, it never steers it.
	Trace bool
	// Span attaches this call's instrumentation under an external
	// parent span instead of an internal tracer, so long-lived callers
	// (the CLI's debug server, the progress ticker) observe the run
	// live. Takes precedence over Trace; Result.Stats stays nil — the
	// external tracer owns the data. Same contract as Trace: the output
	// is byte-identical with or without it.
	Span *obs.Span
	// Log emits structured run events (run start/done, phase
	// boundaries, anomalies) through the given logger — typically a
	// JSON handler — with a fresh run ID attached to every record. Nil
	// (the default) is silent; logging never changes results.
	Log *slog.Logger
}

// Result is an anonymization outcome.
type Result struct {
	// K is the anonymity parameter the output satisfies.
	K int
	// Header is the input header, unchanged.
	Header []string
	// Rows holds the anonymized table in input row order; suppressed
	// entries are Star.
	Rows [][]string
	// Groups lists the k-groups as input row indices; rows in the same
	// group are textually identical in Rows.
	Groups [][]int
	// Cost is the number of entries this call newly suppressed (the
	// paper's objective). Entries already suppressed in the input do
	// not count, so Cost(result.Rows) = result.Cost + Cost(input rows).
	// For AlgoHierarchy it counts every released cell that differs from
	// the input — generalized or suppressed.
	Cost int
	// WeightedCost is Σ over newly suppressed (or, for AlgoHierarchy,
	// changed) entries of the column's weight; equals Cost when
	// ColumnWeights is nil.
	WeightedCost int
	// NCP is the release's normalized certainty penalty in [0,1] —
	// AlgoHierarchy's utility objective. 0 for suppression algorithms.
	NCP float64
	// Suppressed lists the rows AlgoHierarchy released fully starred as
	// outliers, ascending; nil for suppression algorithms.
	Suppressed []int
	// Optimal is true for AlgoExact, and for AlgoHierarchy when the
	// generalization lattice was small enough to enumerate exhaustively
	// (the cut is then the provably minimum-NCP k-anonymous one).
	Optimal bool
	// Stats holds the phase-span tree and counters of this call; nil
	// unless Options.Trace was set.
	Stats *Stats
}

// Anonymize k-anonymizes the given table by entry suppression.
// The header names the columns; every row must have the same length.
func Anonymize(header []string, rows [][]string, k int, opts *Options) (*Result, error) {
	return AnonymizeContext(context.Background(), header, rows, k, opts)
}

// AnonymizeContext is Anonymize with cancellation: the context bounds
// the run. Optimal k-anonymity is NP-hard (even approximating it is
// expensive), so individual calls can be arbitrarily slow; long-lived
// callers — servers, batch drivers — should always pass a context with
// a deadline or cancel hook. The hot phases of every algorithm (family
// construction, greedy cover rounds, the exact solver's DP states, the
// streaming pipeline's blocks) poll the context and abort promptly; a
// cancelled call returns an error wrapping ctx.Err(), so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) discriminate cancellation from input
// errors. Cancellation never corrupts state and never changes the
// result of a run that completes.
func AnonymizeContext(ctx context.Context, header []string, rows [][]string, k int, opts *Options) (res *Result, err error) {
	if opts == nil {
		opts = &Options{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ev := obs.NewEvents(opts.Log, obs.NewRunID())
	var runStart time.Time
	if ev.Enabled() {
		runStart = time.Now()
		ev.RunStart(opts.Algorithm.String(), len(rows), len(header), k)
		defer func() {
			if err != nil {
				ev.RunError(err)
			} else if res != nil {
				ev.RunDone(res.Cost, time.Since(runStart))
			}
		}()
	}
	t, err := buildTable(header, rows)
	if err != nil {
		return nil, err
	}
	// A nil tracer (and thus nil root span) disables every instrument
	// below at the cost of one nil check per use. An external span
	// takes precedence: instrumentation then attaches to the caller's
	// tracer and Result.Stats stays nil.
	var tr *obs.Tracer
	var root *obs.Span
	if opts.Span != nil {
		root = opts.Span.Start("anonymize")
	} else if opts.Trace {
		tr = obs.New()
		root = tr.Start("anonymize")
	}
	defer root.End() // idempotent; closes the span on error paths too
	weights := core.Weights(opts.ColumnWeights)
	if err := weights.Validate(t.Degree()); err != nil {
		return nil, fmt.Errorf("kanon: %w", err)
	}
	if opts.Algorithm != AlgoHierarchy && (opts.Hierarchy != nil || opts.MaxSuppress != 0) {
		return nil, fmt.Errorf("kanon: hierarchy spec and suppression budget require AlgoHierarchy, not %v", opts.Algorithm)
	}
	info, ok := solver.Lookup(opts.Algorithm.String())
	if !ok {
		return nil, fmt.Errorf("kanon: %w", solver.ErrUnknown(opts.Algorithm.String()))
	}
	// The spec travels as `any` so the registry stays family-agnostic;
	// a typed nil must not masquerade as a non-nil payload.
	var hspec any
	if opts.Hierarchy != nil {
		hspec = opts.Hierarchy
	}
	sres, err := info.Run(solver.Request{
		Ctx:                 ctx,
		Table:               t,
		K:                   k,
		Seed:                opts.Seed,
		SplitSorted:         opts.SplitSorted,
		TrueDiameterWeights: opts.TrueDiameterWeights,
		Workers:             opts.Workers,
		Kernel:              opts.Kernel.choice(),
		Weights:             weights,
		MaxSuppress:         opts.MaxSuppress,
		Hierarchy:           hspec,
		Trace:               root,
		Log:                 ev,
	})
	if err != nil {
		return nil, err
	}
	if sres.Partition == nil {
		return finishDirect(t, header, k, opts, sres, root, tr, weights)
	}
	p, optimal := sres.Partition, sres.Optimal

	if opts.Refine && !optimal {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kanon: %w", err)
		}
		ro := refine.Options{}
		if opts.RefineOpts != nil {
			ro = *opts.RefineOpts
		}
		ro.Ctx = ctx
		rs := root.Start("kanon.refine")
		_, err := refine.Partition(t, p, k, &ro)
		rs.End()
		if err != nil {
			return nil, fmt.Errorf("kanon: refining: %w", err)
		}
	}

	ss := root.Start("kanon.suppress")
	sup := p.Suppressor(t)
	anon := sup.Apply(t)
	ss.End()
	if !anon.IsKAnonymous(k) && k > 1 {
		return nil, fmt.Errorf("kanon: internal: output not %d-anonymous", k)
	}
	out := make([][]string, anon.Len())
	for i := range out {
		out[i] = anon.Strings(i)
	}
	p.Normalize()
	cost := anon.TotalStars() - t.TotalStars()
	var stats *Stats
	if root != nil {
		root.Counter("kanon.entries_suppressed").Add(int64(cost))
		root.Counter("kanon.groups").Add(int64(len(p.Groups)))
		root.End()
	}
	if tr != nil {
		stats = tr.Snapshot()
	}
	return &Result{
		K:      k,
		Header: append([]string(nil), header...),
		Rows:   out,
		Groups: p.Groups,
		// Suppressing an already-starred entry is a no-op, so count
		// the star delta, not the suppressor's mask bits.
		Cost:         cost,
		WeightedCost: weightedDelta(t, anon, weights),
		Optimal:      optimal,
		Stats:        stats,
	}, nil
}

// finishDirect packages a direct-release solver result (the hierarchy
// family): the solver rendered the rows itself, so the facade only
// verifies, prices, and wraps them. K-anonymity is checked textually
// with fully suppressed rows exempt from the size floor — an all-star
// row carries no quasi-identifier to link, and the suppression budget
// admits fewer than k of them.
func finishDirect(t *relation.Table, header []string, k int, opts *Options, sres *solver.Result, root *obs.Span, tr *obs.Tracer, weights core.Weights) (*Result, error) {
	out := sres.Rows
	if len(out) != t.Len() {
		return nil, fmt.Errorf("kanon: internal: release has %d rows, input %d", len(out), t.Len())
	}
	class := make(map[string]int, len(out))
	for _, r := range out {
		class[strings.Join(r, "\x00")]++
	}
	for i, r := range out {
		if allStars(r) {
			continue
		}
		if class[strings.Join(r, "\x00")] < k {
			return nil, fmt.Errorf("kanon: internal: released row %d in class smaller than %d", i, k)
		}
	}
	// Cost and WeightedCost price every changed cell; for a direct
	// release "changed" covers generalized labels, not just stars.
	cost, wcost := 0, 0
	for i := 0; i < t.Len(); i++ {
		orig := t.Strings(i)
		for j := range orig {
			if out[i][j] != orig[j] {
				cost++
				if weights == nil {
					wcost++
				} else {
					wcost += weights[j]
				}
			}
		}
	}
	if cost != sres.Cost {
		return nil, fmt.Errorf("kanon: internal: solver cost %d, recount %d", sres.Cost, cost)
	}
	var stats *Stats
	if root != nil {
		root.Counter("kanon.cells_generalized").Add(int64(cost))
		root.Counter("kanon.groups").Add(int64(len(sres.Groups)))
		root.End()
	}
	if tr != nil {
		stats = tr.Snapshot()
	}
	return &Result{
		K:            k,
		Header:       append([]string(nil), header...),
		Rows:         out,
		Groups:       sres.Groups,
		Cost:         cost,
		WeightedCost: wcost,
		NCP:          sres.NCP,
		Suppressed:   sres.Suppressed,
		Optimal:      sres.Optimal,
		Stats:        stats,
	}, nil
}

// allStars reports whether every cell of the row is suppressed.
func allStars(row []string) bool {
	for _, c := range row {
		if c != Star {
			return false
		}
	}
	return true
}

// Verify reports whether the given (possibly starred) table is
// k-anonymous: every row is textually identical to at least k−1 others.
func Verify(header []string, rows [][]string, k int) (bool, error) {
	t, err := buildTable(header, rows)
	if err != nil {
		return false, err
	}
	return t.IsKAnonymous(k), nil
}

// Cost counts the suppressed ("*") entries of a table — the paper's
// objective value of a release.
func Cost(rows [][]string) int {
	n := 0
	for _, r := range rows {
		for _, c := range r {
			if c == Star {
				n++
			}
		}
	}
	return n
}

// OptimalCost computes the exact optimum OPT(V) for small tables
// (n ≤ 24); useful for evaluating other tools' output.
func OptimalCost(header []string, rows [][]string, k int) (int, error) {
	t, err := buildTable(header, rows)
	if err != nil {
		return 0, err
	}
	return exact.OPT(t, k)
}

// Bound returns the algorithm's proven approximation guarantee for the
// given k and degree m, or 0 if the algorithm carries none. The greedy
// bounds are the paper's printed constants; see internal/core for the
// conservative variants.
func Bound(a Algorithm, k, m int) float64 {
	switch a {
	case AlgoGreedyExhaustive:
		return core.Theorem41Bound(k)
	case AlgoGreedyBall:
		return core.Theorem42Bound(k, m)
	case AlgoExact:
		return 1
	default:
		return 0
	}
}

// weightedDelta prices the entries that anon starred but t did not.
func weightedDelta(t, anon *relation.Table, w core.Weights) int {
	total := 0
	for i := 0; i < t.Len(); i++ {
		orig, a := t.Row(i), anon.Row(i)
		for j := range orig {
			if a[j] == relation.Star && orig[j] != relation.Star {
				if w == nil {
					total++
				} else {
					total += w[j]
				}
			}
		}
	}
	return total
}

// buildTable interns a header+rows table, treating "*" as a suppressed
// entry.
func buildTable(header []string, rows [][]string) (*relation.Table, error) {
	if len(header) == 0 {
		return nil, fmt.Errorf("kanon: empty header")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("kanon: no rows")
	}
	t := relation.NewTable(relation.NewSchema(header...))
	for i, r := range rows {
		if len(r) != len(header) {
			return nil, fmt.Errorf("kanon: row %d has %d fields, want %d", i, len(r), len(header))
		}
		if err := t.AppendStrings(r...); err != nil {
			return nil, fmt.Errorf("kanon: row %d: %w", i, err)
		}
	}
	return t, nil
}
